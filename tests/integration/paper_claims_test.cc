#include <gtest/gtest.h>

#include <cmath>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "instance/hard_max_coverage.h"
#include "instance/hard_set_cover.h"
#include "offline/exact_max_coverage.h"
#include "offline/exact_set_cover.h"
#include "stream/set_stream.h"
#include "util/math.h"

namespace streamsc {
namespace {

// One test per paper claim, at laptop scale. These are the source rows of
// EXPERIMENTS.md; the benches sweep the same claims over parameter grids.

// Lemma 2.2: a collection of k independent random (n-s)-subsets leaves at
// least (|U|/2)(s/2n)^k of U uncovered, w.h.p.
TEST(PaperClaims, Lemma22CoverageConcentration) {
  const std::size_t n = 4096, s = n / 4, k = 3;
  Rng rng(1);
  int holds = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    DynamicBitset covered(n);
    for (std::size_t i = 0; i < k; ++i) {
      covered |= rng.RandomSubsetOfSize(n, n - s);
    }
    const double uncovered =
        static_cast<double>(n) - static_cast<double>(covered.CountSet());
    const double bound = (static_cast<double>(n) / 2.0) *
                         std::pow(static_cast<double>(s) / (2.0 * n),
                                  static_cast<double>(k));
    if (uncovered >= bound) ++holds;
  }
  EXPECT_EQ(holds, trials);
}

// Lemma 3.2 / Remark 3.1: θ = 1 ⇒ opt = 2; θ = 0 ⇒ opt > 2α (w.h.p.).
TEST(PaperClaims, Lemma32OptGap) {
  // The θ = 0 branch needs the Lemma 3.2 regime n/t^α ≫ 1: with t ≈ 15
  // two pair-unions leave ≈ n/t² ≈ 18 doubly-missed elements in
  // expectation, so no 2α-cover exists w.h.p. (see
  // HardSetCoverTest.ThetaZeroOptExceedsTwoAlphaOnSmallInstances).
  HardSetCoverParams params;
  params.n = 4096;
  params.m = 8;
  params.alpha = 2.0;
  params.t_scale = 0.34;
  HardSetCoverDistribution dist(params);
  Rng rng(2);

  // θ = 1: opt is exactly 2 (planted pair feasible; no single set covers).
  const HardSetCoverInstance planted = dist.SampleThetaOne(rng);
  const SetSystem planted_system = planted.ToSetSystem();
  ExactSetCoverOptions options;
  options.size_limit = 2;
  const ExactSetCoverResult planted_result =
      SolveExactSetCover(planted_system, options);
  ASSERT_TRUE(planted_result.feasible);
  EXPECT_EQ(planted_result.solution.size(), 2u);

  // θ = 0: no cover of size 2α.
  int exceeded = 0;
  const int trials = 8;
  for (int trial = 0; trial < trials; ++trial) {
    const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
    ExactSetCoverOptions decision;
    decision.size_limit = static_cast<std::size_t>(2 * params.alpha);
    const ExactSetCoverResult result =
        SolveExactSetCover(inst.ToSetSystem(), decision);
    if (result.complete && !result.feasible) ++exceeded;
  }
  EXPECT_GE(exceeded, trials - 1);
}

// Theorem 2: (2α+1) passes, (α+ε)-approximation, and the n^{1/α} space
// shape, measured on planted instances with known opt.
TEST(PaperClaims, Theorem2PassesApproximationSpace) {
  Rng rng(3);
  const std::size_t n = 4096, m = 64, opt = 4;
  const SetSystem system = PlantedCoverInstance(n, m, opt, rng);
  std::vector<double> space_over_prediction;
  for (const std::size_t alpha : {2, 3, 4}) {
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = 0.5;
    AssadiSetCover algorithm(config);
    Rng run_rng(4);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt, run_rng);
    ASSERT_TRUE(result.feasible);
    // Pass budget 2α+1 (+1 cleanup allowance).
    EXPECT_LE(result.passes, 2 * alpha + 2);
    // Approximation budget.
    EXPECT_LE(static_cast<double>(result.solution.size()),
              (static_cast<double>(alpha) + 0.5) * opt);
    // Space tracks m·n^{1/α}: the ratio to the prediction stays within a
    // broad constant band across α.
    const double prediction =
        static_cast<double>(m) * NthRoot(static_cast<double>(n),
                                         static_cast<double>(alpha)) *
            SafeLog(static_cast<double>(m)) +
        static_cast<double>(n);
    space_over_prediction.push_back(
        static_cast<double>(result.peak_space_bytes) * 8.0 / prediction);
  }
  const double lo =
      *std::min_element(space_over_prediction.begin(),
                        space_over_prediction.end());
  const double hi =
      *std::max_element(space_over_prediction.begin(),
                        space_over_prediction.end());
  EXPECT_LT(hi / lo, 40.0);
}

// Lemma 4.3: opt_2 lands (1±Θ(ε)) around τ depending on θ.
TEST(PaperClaims, Lemma43MaxCoverageGap) {
  HardMaxCoverageParams params;
  params.epsilon = 0.2;
  params.m = 8;
  HardMaxCoverageDistribution dist(params);
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const HardMaxCoverageInstance one = dist.SampleThetaOne(rng);
    const ExactMaxCoverageResult v_one =
        SolveExactMaxCoverage(one.ToSetSystem(), 2);
    EXPECT_GT(static_cast<double>(v_one.coverage), one.tau);

    const HardMaxCoverageInstance zero = dist.SampleThetaZero(rng);
    const ExactMaxCoverageResult v_zero =
        SolveExactMaxCoverage(zero.ToSetSystem(), 2);
    EXPECT_LT(static_cast<double>(v_zero.coverage), zero.tau);
  }
}

// Claim 3.3 direction: singleton-collections (no matched pair) leave a
// polynomial fraction of the universe uncovered under θ = 0.
TEST(PaperClaims, Claim33SingletonCollectionsLeaveResidue) {
  HardSetCoverParams params;
  params.n = 1024;
  params.m = 16;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  Rng rng(6);
  const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
  // Take 2α = 4 sets, one per index (a singleton-collection).
  DynamicBitset covered(params.n);
  for (std::size_t i = 0; i < 4; ++i) {
    covered |= inst.s_sets[i];
  }
  EXPECT_FALSE(covered.All());
  const double residue =
      static_cast<double>(params.n) - static_cast<double>(covered.CountSet());
  // Lemma 2.2-style bound: residue >= n/2 · (1/6)^4 ≈ n/2592 > 0.
  EXPECT_GE(residue, static_cast<double>(params.n) / 2592.0);
}

// Theorem 1 consequence (simulation direction): a p-pass s-space
// algorithm implies ~2p·s communication; verify the accounting identity
// on a real run.
TEST(PaperClaims, Theorem1SimulationAccounting) {
  Rng rng(7);
  const SetSystem system = PlantedCoverInstance(512, 32, 3, rng);
  VectorSetStream stream(system);
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  config.known_opt = 3;
  AssadiSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  const double communication = 2.0 *
                               static_cast<double>(result.stats.passes) *
                               static_cast<double>(
                                   result.stats.peak_space_bytes) *
                               8.0;
  // The identity the lower bound leans on: communication >= p·s and both
  // are finite, positive, and consistent.
  EXPECT_GT(communication, 0.0);
  EXPECT_GE(communication,
            static_cast<double>(result.stats.passes) *
                static_cast<double>(result.stats.peak_space_bytes) * 8.0);
}

// Remark 1.1: the hard instances have constant-size optima (poly-time
// solvable offline) — hardness is purely a space phenomenon.
TEST(PaperClaims, Remark11HardInstancesAreOfflineEasy) {
  HardSetCoverParams params;
  params.n = 256;
  params.m = 8;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  Rng rng(8);
  const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
  const SetSystem system = inst.ToSetSystem();
  // The pair oracle solves it by scanning all O(m²) pairs.
  bool found = false;
  for (std::size_t i = 0; i < inst.m() && !found; ++i) {
    for (std::size_t j = 0; j < inst.m() && !found; ++j) {
      if ((inst.s_sets[i] | inst.t_sets[j]).All()) found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace streamsc
