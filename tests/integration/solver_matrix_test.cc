// The cross-algorithm conformance matrix (see testing/solver_matrix.h):
// every streaming solver in core/ must produce byte-identical solutions,
// covers, and deterministic stats across {VectorSetStream, FileSetStream,
// MmapSetStream} x {no engine, 1, 2, 8 threads}. One parameterized
// harness instead of per-algorithm ad-hoc determinism spot checks — a
// solver that cannot run through this matrix green has no business
// accepting an engine.

#include <gtest/gtest.h>

#include "core/assadi_set_cover.h"
#include "core/demaine_set_cover.h"
#include "core/emek_rosen_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "core/max_coverage.h"
#include "core/one_pass_set_cover.h"
#include "core/pair_finder.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"
#include "testing/solver_matrix.h"
#include "util/random.h"

namespace streamsc {
namespace {

using testing::RunConformanceMatrix;
using testing::SolverOutcome;
using testing::ToOutcome;

// A mixed-density instance: sparse planted blocks plus a dense
// every-other-element set, so the matrix exercises both payload
// representations on every source (text files always stream dense; the
// hybrid and mmap stores sparsify below the density threshold).
SetSystem MatrixInstance(std::size_t n, std::size_t m, std::size_t opt,
                         std::uint64_t seed) {
  Rng rng(seed);
  SetSystem system = PlantedCoverInstance(n, m, opt, rng);
  std::vector<ElementId> half;
  for (ElementId e = 0; e < n; e += 2) half.push_back(e);
  system.AddSetFromIndices(half);
  return system;
}

// An instance whose optimum is a planted *pair*, for the exact pair
// finder: two sets split the universe; decoys miss at least one element.
SetSystem PairInstance(std::size_t n, std::size_t decoys,
                       std::uint64_t seed) {
  Rng rng(seed);
  SetSystem system(n);
  std::vector<ElementId> low, high;
  for (ElementId e = 0; e < n; ++e) {
    (e < n / 2 ? low : high).push_back(e);
  }
  system.AddSetFromIndices(low);
  system.AddSetFromIndices(high);
  for (std::size_t d = 0; d < decoys; ++d) {
    std::vector<ElementId> members;
    for (ElementId e = 1; e < n; ++e) {  // every decoy misses element 0
      if (rng.Bernoulli(0.4)) members.push_back(e);
    }
    system.AddSetFromIndices(members);
  }
  return system;
}

TEST(SolverMatrixTest, Assadi) {
  const SetSystem system = MatrixInstance(320, 28, 4, 7);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    AssadiConfig config;
    config.alpha = 2;
    config.epsilon = 0.5;
    config.seed = 11;
    config.engine = engine;
    return ToOutcome(AssadiSetCover(config).Run(stream));
  });
}

TEST(SolverMatrixTest, HarPeled) {
  const SetSystem system = MatrixInstance(320, 28, 4, 8);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    HarPeledConfig config;
    config.alpha = 2;
    config.seed = 13;
    config.engine = engine;
    return ToOutcome(HarPeledSetCover(config).Run(stream));
  });
}

TEST(SolverMatrixTest, Demaine) {
  const SetSystem system = MatrixInstance(320, 28, 4, 9);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    DemaineConfig config;
    config.alpha = 4;
    config.seed = 17;
    config.engine = engine;
    return ToOutcome(DemaineSetCover(config).Run(stream));
  });
}

TEST(SolverMatrixTest, EmekRosen) {
  const SetSystem system = MatrixInstance(320, 28, 4, 10);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    EmekRosenConfig config;
    config.engine = engine;
    return ToOutcome(EmekRosenSetCover(config).Run(stream));
  });
}

TEST(SolverMatrixTest, OnePass) {
  const SetSystem system = MatrixInstance(320, 28, 4, 11);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    OnePassConfig config;
    config.min_gain_fraction = 0.05;
    config.engine = engine;
    return ToOutcome(OnePassSetCover(config).Run(stream));
  });
}

TEST(SolverMatrixTest, ThresholdGreedy) {
  const SetSystem system = MatrixInstance(320, 28, 4, 12);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    ThresholdGreedyConfig config;
    config.engine = engine;
    return ToOutcome(ThresholdGreedySetCover(config).Run(stream));
  });
}

TEST(SolverMatrixTest, ElementSamplingMaxCoverage) {
  const SetSystem system = MatrixInstance(320, 28, 4, 13);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    ElementSamplingMcConfig config;
    config.seed = 19;
    config.engine = engine;
    return ToOutcome(ElementSamplingMaxCoverage(config).Run(stream, 3));
  });
}

TEST(SolverMatrixTest, SieveMaxCoverage) {
  const SetSystem system = MatrixInstance(320, 28, 4, 14);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    SieveMcConfig config;
    config.engine = engine;
    return ToOutcome(SieveMaxCoverage(config).Run(stream, 3));
  });
}

TEST(SolverMatrixTest, ExactPairFinder) {
  const SetSystem system = PairInstance(256, 20, 15);
  RunConformanceMatrix(system, [](SetStream& stream,
                                  ParallelPassEngine* engine) {
    PairFinderConfig config;
    config.passes = 4;
    config.engine = engine;
    return ToOutcome(ExactPairFinder(config).Run(stream));
  });
}

// The matrix must also hold when the solver's stream order is a fixed
// random permutation (the paper's random-arrival model): VectorSetStream
// cells use kRandomOnce here, so this variant runs memory-only across
// thread counts (file/mmap sources always stream in id order).
TEST(SolverMatrixTest, ThresholdGreedyRandomArrivalAcrossThreads) {
  const SetSystem system = MatrixInstance(320, 28, 4, 16);

  const auto solve = [&](ParallelPassEngine* engine) {
    Rng order_rng(99);
    VectorSetStream stream(system, StreamOrder::kRandomOnce, &order_rng);
    ThresholdGreedyConfig config;
    config.engine = engine;
    return ToOutcome(ThresholdGreedySetCover(config).Run(stream));
  };

  const SolverOutcome baseline = solve(nullptr);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelPassEngine engine(threads);
    const SolverOutcome outcome = solve(&engine);
    EXPECT_EQ(outcome.chosen, baseline.chosen);
    EXPECT_EQ(outcome.passes, baseline.passes);
    EXPECT_EQ(outcome.sets_taken, baseline.sets_taken);
    EXPECT_EQ(outcome.elements_covered, baseline.elements_covered);
  }
}

}  // namespace
}  // namespace streamsc
