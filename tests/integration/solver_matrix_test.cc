// The cross-algorithm conformance matrix (see testing/solver_matrix.h):
// every streaming solver must produce byte-identical solutions, covers,
// and deterministic stats across {VectorSetStream, FileSetStream,
// MmapSetStream} x {no engine, 1, 2, 8 threads}. Since the unified-API
// redesign the matrix is driven through the public front door: each cell
// constructs its solver from the string-keyed SolverRegistry, and every
// solver additionally runs through the owning SolveSession (source
// sniffing + engine lifetime via `threads=`) from both on-disk formats —
// so the conformance proof covers exactly the construction path external
// callers use, not a parallel hand-wired one.

#include <gtest/gtest.h>

#include "api/solver_registry.h"
#include "instance/generators.h"
#include "stream/engine_context.h"
#include "testing/solver_matrix.h"
#include "util/random.h"

namespace streamsc {
namespace {

using testing::RegistrySolverFn;
using testing::RunConformanceMatrix;
using testing::SolverOutcome;

// A mixed-density instance: sparse planted blocks plus a dense
// every-other-element set, so the matrix exercises both payload
// representations on every source (text files always stream dense; the
// hybrid and mmap stores sparsify below the density threshold).
SetSystem MatrixInstance(std::size_t n, std::size_t m, std::size_t opt,
                         std::uint64_t seed) {
  Rng rng(seed);
  SetSystem system = PlantedCoverInstance(n, m, opt, rng);
  std::vector<ElementId> half;
  for (ElementId e = 0; e < n; e += 2) half.push_back(e);
  system.AddSetFromIndices(half);
  return system;
}

// An instance whose optimum is a planted *pair*, for the exact pair
// finder: two sets split the universe; decoys miss at least one element.
SetSystem PairInstance(std::size_t n, std::size_t decoys,
                       std::uint64_t seed) {
  Rng rng(seed);
  SetSystem system(n);
  std::vector<ElementId> low, high;
  for (ElementId e = 0; e < n; ++e) {
    (e < n / 2 ? low : high).push_back(e);
  }
  system.AddSetFromIndices(low);
  system.AddSetFromIndices(high);
  for (std::size_t d = 0; d < decoys; ++d) {
    std::vector<ElementId> members;
    for (ElementId e = 1; e < n; ++e) {  // every decoy misses element 0
      if (rng.Bernoulli(0.4)) members.push_back(e);
    }
    system.AddSetFromIndices(members);
  }
  return system;
}

TEST(SolverMatrixTest, Assadi) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 7), "assadi",
                       {"alpha=2", "epsilon=0.5", "seed=11"});
}

TEST(SolverMatrixTest, HarPeled) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 8), "har_peled",
                       {"alpha=2", "seed=13"});
}

TEST(SolverMatrixTest, Demaine) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 9), "demaine",
                       {"alpha=4", "seed=17"});
}

TEST(SolverMatrixTest, EmekRosen) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 10), "emek_rosen", {});
}

TEST(SolverMatrixTest, OnePass) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 11), "one_pass",
                       {"min_gain_fraction=0.05"});
}

TEST(SolverMatrixTest, ThresholdGreedy) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 12), "threshold_greedy",
                       {});
}

TEST(SolverMatrixTest, ElementSamplingMaxCoverage) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 13), "element_sampling_mc",
                       {"seed=19", "k=3"});
}

TEST(SolverMatrixTest, SieveMaxCoverage) {
  RunConformanceMatrix(MatrixInstance(320, 28, 4, 14), "sieve_mc", {"k=3"});
}

TEST(SolverMatrixTest, ExactPairFinder) {
  RunConformanceMatrix(PairInstance(256, 20, 15), "pair_finder",
                       {"passes=4"});
}

// The matrix must also hold when the solver's stream order is a fixed
// random permutation (the paper's random-arrival model): VectorSetStream
// cells use kRandomOnce here, so this variant runs memory-only across
// thread counts (file/mmap sources always stream in id order). Still
// registry-constructed: the custom piece is the stream, not the solver.
TEST(SolverMatrixTest, ThresholdGreedyRandomArrivalAcrossThreads) {
  const SetSystem system = MatrixInstance(320, 28, 4, 16);
  const testing::SolverFn solve_fn =
      RegistrySolverFn("threshold_greedy", {});

  const auto solve = [&](ParallelPassEngine* engine) {
    Rng order_rng(99);
    VectorSetStream stream(system, StreamOrder::kRandomOnce, &order_rng);
    return solve_fn(stream, engine);
  };

  const SolverOutcome baseline = solve(nullptr);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelPassEngine engine(threads);
    const SolverOutcome outcome = solve(&engine);
    EXPECT_EQ(outcome.chosen, baseline.chosen);
    EXPECT_EQ(outcome.passes, baseline.passes);
    EXPECT_EQ(outcome.sets_taken, baseline.sets_taken);
    EXPECT_EQ(outcome.elements_covered, baseline.elements_covered);
  }
}

}  // namespace
}  // namespace streamsc
