// The zero-allocation steady-state proof for the per-run arena memory
// model: after one warm-up run, re-running any registry solver over the
// same session-shaped resources (reset run arena, warm thread-local
// scratch/table arenas, reused SolveReport) performs **zero** heap
// allocations — with no engine and on an 8-thread pool, and with a
// TraceRecorder armed or not: tracing-off is a single branch per hook,
// tracing-on allocates only at arm time (ring preallocation) and every
// Emit writes in place.
//
// testing/alloc_counter.cc is compiled into this binary, replacing the
// global operator new/delete with counting forwarders, so allocations on
// every thread (workers included) are visible while armed.
//
// Sequentially the run is deterministic, so the assertion is strict: the
// second run must allocate nothing. With a worker pool, index claiming is
// dynamic — which worker's scratch/table arena serves an item varies run
// to run, so per-worker chunk capacities (and the engine's job pool) warm
// toward their schedule-independent maximum over a few runs instead of
// exactly one. Capacities only grow and are bounded, so the allocation
// count converges to zero; the test asserts it reaches zero within a
// small bounded number of runs.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/solver_registry.h"
#include "instance/generators.h"
#include "obs/trace.h"
#include "stream/parallel_pass_engine.h"
#include "stream/stream_adapters.h"
#include "testing/alloc_counter.h"
#include "util/arena.h"
#include "util/random.h"

namespace streamsc {
namespace {

// Same mixed-density shape as the conformance matrix: sparse planted
// blocks plus a dense every-other-element set, so the steady state covers
// both payload representations.
SetSystem Instance(std::size_t n, std::size_t m, std::size_t opt,
                   std::uint64_t seed) {
  Rng rng(seed);
  SetSystem system = PlantedCoverInstance(n, m, opt, rng);
  std::vector<ElementId> half;
  for (ElementId e = 0; e < n; e += 2) half.push_back(e);
  system.AddSetFromIndices(half);
  return system;
}

// A planted-pair instance for the exact pair finder.
SetSystem PairInstance(std::size_t n, std::size_t decoys,
                       std::uint64_t seed) {
  Rng rng(seed);
  SetSystem system(n);
  std::vector<ElementId> low, high;
  for (ElementId e = 0; e < n; ++e) {
    (e < n / 2 ? low : high).push_back(e);
  }
  system.AddSetFromIndices(low);
  system.AddSetFromIndices(high);
  for (std::size_t d = 0; d < decoys; ++d) {
    std::vector<ElementId> members;
    for (ElementId e = 1; e < n; ++e) {
      if (rng.Bernoulli(0.4)) members.push_back(e);
    }
    system.AddSetFromIndices(members);
  }
  return system;
}

void ExpectZeroAllocSteadyState(const SetSystem& system,
                                const std::string& solver_key,
                                const std::vector<std::string>& options,
                                std::size_t threads, bool traced) {
  SCOPED_TRACE(solver_key + " threads=" + std::to_string(threads) +
               (traced ? " traced" : ""));

  StatusOr<std::unique_ptr<AnySolver>> created =
      SolverRegistry::Global().Create(solver_key, options);
  ASSERT_TRUE(created.ok()) << created.status().message();
  AnySolver& any = **created;

  std::unique_ptr<ParallelPassEngine> engine;
  if (threads > 1) engine = std::make_unique<ParallelPassEngine>(threads);

  // Tracing-on allocates only at arm time (recorder construction, here,
  // outside the armed window); every Emit during the runs below writes
  // into the preallocated rings and must count zero.
  std::unique_ptr<TraceRecorder> recorder;
  if (traced) recorder = std::make_unique<TraceRecorder>();

  VectorSetStream stream(system);
  MonotonicArena arena;
  RunContext context;
  context.engine = engine.get();
  context.arena = &arena;
  context.trace = recorder.get();

  // Reused across runs: strings and the solution vector reach their
  // steady-state capacity during warm-up.
  SolveReport report;

  // Run 0 is the warm-up; sequentially run 1 must already be clean, with
  // workers the count must hit zero within the convergence budget.
  const int max_runs = threads > 1 ? 12 : 2;
  std::uint64_t steady_allocations = ~std::uint64_t{0};
  std::uint64_t steady_bytes = 0;
  ArenaVector<SetId> first_chosen;
  for (int run = 0; run < max_runs; ++run) {
    arena.Reset();
    testing::ArmAllocCounter();
    const Status status = any.RunInto(stream, context, &report);
    const testing::AllocCounterStats stats = testing::DisarmAllocCounter();
    ASSERT_TRUE(status.ok()) << status.message();
    if (run == 0) {
      first_chosen = report.solution.chosen;
      continue;
    }
    // Warm or cold, reruns stay deterministic.
    EXPECT_EQ(report.solution.chosen, first_chosen) << "rerun diverged";
    steady_allocations = stats.allocations;
    steady_bytes = stats.bytes;
    if (steady_allocations == 0) break;
  }
  EXPECT_EQ(steady_allocations, 0u)
      << "solver '" << solver_key << "' still allocated " << steady_bytes
      << " heap bytes per run after warm-up"
      << (traced ? " with tracing armed" : "");
  if (traced) {
    EXPECT_GT(recorder->events_recorded(), 0u)
        << "traced runs must actually record spans";
  }
}

void ExpectZeroAllocBothWidths(const SetSystem& system,
                               const std::string& solver_key,
                               const std::vector<std::string>& options) {
  for (const bool traced : {false, true}) {
    ExpectZeroAllocSteadyState(system, solver_key, options, 1, traced);
    ExpectZeroAllocSteadyState(system, solver_key, options, 8, traced);
  }
}

// The interposer must actually be linked and armed — otherwise every
// zero-allocation assertion below would pass vacuously.
TEST(ZeroAllocTest, CounterSeesHeapTraffic) {
  testing::ArmAllocCounter();
  std::vector<std::uint64_t>* v = new std::vector<std::uint64_t>(1024);
  delete v;
  const testing::AllocCounterStats stats = testing::DisarmAllocCounter();
  // At least the 8 KiB element buffer must be observed (the compiler may
  // elide the vector object's own new/delete pair, but not the buffer).
  EXPECT_GE(stats.allocations, 1u);
  EXPECT_GE(stats.deallocations, 1u);
  EXPECT_GE(stats.bytes, 1024 * sizeof(std::uint64_t));
}

TEST(ZeroAllocTest, Assadi) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 7), "assadi",
                            {"alpha=2", "epsilon=0.5", "seed=11"});
}

TEST(ZeroAllocTest, HarPeled) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 8), "har_peled",
                            {"alpha=2", "seed=13"});
}

TEST(ZeroAllocTest, Demaine) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 9), "demaine",
                            {"alpha=4", "seed=17"});
}

TEST(ZeroAllocTest, EmekRosen) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 10), "emek_rosen", {});
}

TEST(ZeroAllocTest, OnePass) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 11), "one_pass",
                            {"min_gain_fraction=0.05"});
}

TEST(ZeroAllocTest, ThresholdGreedy) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 12), "threshold_greedy", {});
}

TEST(ZeroAllocTest, ElementSamplingMaxCoverage) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 13), "element_sampling_mc",
                            {"seed=19", "k=3"});
}

TEST(ZeroAllocTest, SieveMaxCoverage) {
  ExpectZeroAllocBothWidths(Instance(320, 28, 4, 14), "sieve_mc", {"k=3"});
}

TEST(ZeroAllocTest, ExactPairFinder) {
  ExpectZeroAllocBothWidths(PairInstance(256, 20, 15), "pair_finder",
                            {"passes=4"});
}

}  // namespace
}  // namespace streamsc
