#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/assadi_set_cover.h"
#include "core/demaine_set_cover.h"
#include "core/emek_rosen_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "core/one_pass_set_cover.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "offline/verifier.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

// ---- Cross-algorithm invariants, swept over (algorithm, instance kind,
// ---- order, seed) with parameterized gtest. -------------------------------

enum class AlgoKind {
  kAssadi,
  kHarPeled,
  kDemaine,
  kEmekRosen,
  kThresholdGreedy,
  kOnePass
};
enum class InstanceKind { kPlanted, kUniform, kZipf, kNeedle };

std::unique_ptr<StreamingSetCoverAlgorithm> MakeAlgorithm(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kAssadi: {
      AssadiConfig config;
      config.alpha = 2;
      config.epsilon = 0.5;
      return std::make_unique<AssadiSetCover>(config);
    }
    case AlgoKind::kHarPeled: {
      HarPeledConfig config;
      config.alpha = 2;
      return std::make_unique<HarPeledSetCover>(config);
    }
    case AlgoKind::kDemaine: {
      DemaineConfig config;
      config.alpha = 4;
      return std::make_unique<DemaineSetCover>(config);
    }
    case AlgoKind::kEmekRosen:
      return std::make_unique<EmekRosenSetCover>();
    case AlgoKind::kThresholdGreedy:
      return std::make_unique<ThresholdGreedySetCover>();
    case AlgoKind::kOnePass:
      return std::make_unique<OnePassSetCover>();
  }
  return nullptr;
}

SetSystem MakeInstance(InstanceKind kind, std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case InstanceKind::kPlanted:
      return PlantedCoverInstance(256, 24, 4, rng);
    case InstanceKind::kUniform:
      return UniformRandomInstance(192, 24, 36, rng);
    case InstanceKind::kZipf:
      return ZipfInstance(224, 28, 1.2, 100, rng);
    case InstanceKind::kNeedle:
      return NeedleInstance(160, 18, 3, rng);
  }
  return SetSystem(0);
}

using PropertyParam =
    std::tuple<AlgoKind, InstanceKind, StreamOrder, std::uint64_t>;

class StreamingCoverPropertyTest
    : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(StreamingCoverPropertyTest, SolutionsAreFeasibleAndAccounted) {
  const auto [algo_kind, instance_kind, order, seed] = GetParam();
  const SetSystem system = MakeInstance(instance_kind, seed);
  Rng order_rng(seed + 1);
  VectorSetStream stream(system, order,
                         order == StreamOrder::kAdversarial ? nullptr
                                                            : &order_rng);
  auto algorithm = MakeAlgorithm(algo_kind);
  const SetCoverRunResult result = algorithm->Run(stream);

  // P1: feasibility claims match reality.
  const CoverVerdict verdict = VerifyCover(system, result.solution);
  EXPECT_EQ(result.feasible, verdict.feasible) << algorithm->name();

  // P2: all solution ids are valid and distinct work (no duplicates).
  ArenaVector<SetId> ids = result.solution.chosen;
  for (SetId id : ids) EXPECT_LT(id, system.num_sets());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << algorithm->name() << " returned duplicate sets";

  // P3: accounting sanity.
  EXPECT_GE(stream.passes(), result.stats.passes);
  EXPECT_GT(result.stats.peak_space_bytes, 0u);

  // P4: solutions never exceed m sets.
  EXPECT_LE(result.solution.size(), system.num_sets());

  // P5: multi-pass algorithms are feasible on these (coverable) inputs.
  if (algo_kind != AlgoKind::kOnePass) {
    EXPECT_TRUE(result.feasible) << algorithm->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingCoverPropertyTest,
    ::testing::Combine(
        ::testing::Values(AlgoKind::kAssadi, AlgoKind::kHarPeled,
                          AlgoKind::kDemaine, AlgoKind::kEmekRosen,
                          AlgoKind::kThresholdGreedy, AlgoKind::kOnePass),
        ::testing::Values(InstanceKind::kPlanted, InstanceKind::kUniform,
                          InstanceKind::kZipf, InstanceKind::kNeedle),
        ::testing::Values(StreamOrder::kAdversarial,
                          StreamOrder::kRandomOnce),
        ::testing::Values(11u, 29u)));

// ---- Exact-solver invariants over random instances. -----------------------

class ExactSolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactSolverPropertyTest, OptimalityAndMonotonicity) {
  Rng rng(1000 + GetParam());
  const SetSystem system = UniformRandomInstance(48, 10, 10, rng);
  const ExactSetCoverResult base = SolveExactSetCover(system);
  if (!base.proven_optimal || !base.feasible) GTEST_SKIP();

  // Adding a set never increases the optimum.
  SetSystem bigger = system;
  bigger.AddSet(rng.BernoulliSubset(48, 0.4));
  const ExactSetCoverResult grown = SolveExactSetCover(bigger);
  ASSERT_TRUE(grown.proven_optimal);
  EXPECT_LE(grown.solution.size(), base.solution.size());

  // Restricting the universe never increases the optimum.
  const DynamicBitset smaller_universe = rng.BernoulliSubset(48, 0.6);
  const ExactSetCoverResult restricted =
      SolveExactSetCover(system, smaller_universe);
  if (restricted.proven_optimal && restricted.feasible) {
    EXPECT_LE(restricted.solution.size(), base.solution.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactSolverPropertyTest,
                         ::testing::Range(0, 12));

// ---- Assadi guess-monotonicity: bigger guesses never hurt feasibility. ----

class GuessMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(GuessMonotonicityTest, LargerGuessStaysFeasible) {
  Rng rng(2000 + GetParam());
  const std::size_t opt = 3;
  const SetSystem system = PlantedCoverInstance(256, 24, opt, rng);
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  config.seed = 3000 + GetParam();
  AssadiSetCover algorithm(config);
  bool seen_feasible = false;
  for (const std::size_t guess : {opt, opt * 2, opt * 4}) {
    VectorSetStream stream(system);
    Rng run_rng(config.seed + guess);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, guess, run_rng);
    if (result.feasible) seen_feasible = true;
    // Once a guess >= opt works, all larger guesses must also produce
    // feasible covers (budgets only grow).
    if (seen_feasible) {
      EXPECT_TRUE(result.feasible) << "guess=" << guess;
    }
  }
  EXPECT_TRUE(seen_feasible);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, GuessMonotonicityTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace streamsc
