// SolverRegistry: the string-keyed front door must be (a) *complete* —
// every registered name constructs and runs; (b) *faithful* — a
// registry-built solver produces byte-identical solutions and stats to
// direct config-struct construction; and (c) *safe* — arbitrary
// malformed key=value input comes back as an actionable Status, never an
// abort. The death tests at the bottom pin the deliberate asymmetry:
// hand-built config structs keep their STREAMSC_CHECK crash-on-misuse
// contract while the registry path for the same bad value reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/solver_registry.h"
#include "core/assadi_set_cover.h"
#include "core/demaine_set_cover.h"
#include "core/emek_rosen_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "core/max_coverage.h"
#include "core/one_pass_set_cover.h"
#include "core/pair_finder.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"
#include "stream/set_stream.h"
#include "testing/solver_matrix.h"
#include "util/random.h"

namespace streamsc {
namespace {

using testing::SolverOutcome;
using testing::ToOutcome;

constexpr const char* kAllSolvers[] = {
    "assadi",   "har_peled",        "demaine",
    "emek_rosen", "one_pass",       "threshold_greedy",
    "sieve_mc", "element_sampling_mc", "pair_finder"};

SetSystem SmallInstance(std::uint64_t seed) {
  Rng rng(seed);
  return PlantedCoverInstance(128, 16, 4, rng);
}

SetSystem SmallPairInstance() {
  SetSystem system(64);
  std::vector<ElementId> low, high, decoy;
  for (ElementId e = 0; e < 64; ++e) {
    (e < 32 ? low : high).push_back(e);
    if (e > 0 && e % 3 == 0) decoy.push_back(e);
  }
  system.AddSetFromIndices(low);
  system.AddSetFromIndices(high);
  system.AddSetFromIndices(decoy);
  return system;
}

// Runs a registry-built solver sequentially over a fresh stream.
SolverOutcome RunRegistry(const SetSystem& system, const std::string& name,
                          const std::vector<std::string>& options) {
  StatusOr<std::unique_ptr<AnySolver>> solver =
      SolverRegistry::Global().Create(name, options);
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  if (!solver.ok()) return {};
  VectorSetStream stream(system);
  StatusOr<SolveReport> report = (*solver)->Run(stream, RunContext{});
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) return {};
  return ToOutcome(*report);
}

void ExpectSameOutcome(const SolverOutcome& direct,
                       const SolverOutcome& registry) {
  EXPECT_EQ(registry.chosen, direct.chosen);
  EXPECT_EQ(registry.feasible, direct.feasible);
  EXPECT_EQ(registry.passes, direct.passes);
  EXPECT_EQ(registry.items_seen, direct.items_seen);
  EXPECT_EQ(registry.sets_taken, direct.sets_taken);
  EXPECT_EQ(registry.elements_covered, direct.elements_covered);
  EXPECT_EQ(registry.peak_space_bytes, direct.peak_space_bytes);
  EXPECT_EQ(registry.extra, direct.extra);
  // Vacuity guard: a mutually-empty run would "agree" trivially.
  EXPECT_TRUE(direct.feasible);
  EXPECT_FALSE(direct.chosen.empty());
}

// ---------------------------------------------------------------------------
// Completeness + listing.

TEST(SolverRegistryTest, ListsAllNineSolvers) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  ASSERT_EQ(names.size(), 9u);
  for (const char* expected : kAllSolvers) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing solver: " << expected;
  }
  // Sorted listing (std::map order) — stable for docs and scripting.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistryTest, EverySolverHasDocumentedOptions) {
  for (const std::string& name : SolverRegistry::Global().Names()) {
    const SolverInfo* info = SolverRegistry::Global().Find(name);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->summary.empty());
    for (const OptionDescriptor& desc : info->options) {
      EXPECT_FALSE(desc.name.empty());
      EXPECT_FALSE(desc.doc.empty()) << name << "." << desc.name;
      EXPECT_FALSE(desc.RangeText().empty());
      EXPECT_FALSE(desc.DefaultText().empty());
    }
  }
}

TEST(SolverRegistryTest, FindUnknownReturnsNull) {
  EXPECT_EQ(SolverRegistry::Global().Find("nope"), nullptr);
}

TEST(SolverRegistryTest, EveryRegisteredNameConstructsWithDefaults) {
  for (const std::string& name : SolverRegistry::Global().Names()) {
    StatusOr<std::unique_ptr<AnySolver>> solver =
        SolverRegistry::Global().Create(name, {});
    ASSERT_TRUE(solver.ok()) << name << ": " << solver.status().ToString();
    EXPECT_EQ((*solver)->solver(), name);
    EXPECT_FALSE((*solver)->algorithm_name().empty());
  }
}

// ---------------------------------------------------------------------------
// Round-trip faithfulness: registry construction == direct construction,
// byte for byte, for every solver (non-default options on purpose; all
// numeric literals round-trip exactly through the text parser).

TEST(SolverRegistryRoundTripTest, Assadi) {
  const SetSystem system = SmallInstance(3);
  AssadiConfig config;
  config.alpha = 3;
  config.epsilon = 0.25;
  config.seed = 5;
  config.use_exact_subsolver = false;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(AssadiSetCover(config).Run(stream));
  ExpectSameOutcome(direct,
                    RunRegistry(system, "assadi",
                                {"alpha=3", "epsilon=0.25", "seed=5",
                                 "use_exact_subsolver=false"}));
}

TEST(SolverRegistryRoundTripTest, HarPeled) {
  const SetSystem system = SmallInstance(4);
  HarPeledConfig config;
  config.alpha = 3;
  config.seed = 5;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(HarPeledSetCover(config).Run(stream));
  ExpectSameOutcome(direct,
                    RunRegistry(system, "har_peled", {"alpha=3", "seed=5"}));
}

TEST(SolverRegistryRoundTripTest, Demaine) {
  const SetSystem system = SmallInstance(5);
  DemaineConfig config;
  config.alpha = 4;
  config.seed = 9;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(DemaineSetCover(config).Run(stream));
  ExpectSameOutcome(direct,
                    RunRegistry(system, "demaine", {"alpha=4", "seed=9"}));
}

TEST(SolverRegistryRoundTripTest, EmekRosen) {
  const SetSystem system = SmallInstance(6);
  EmekRosenConfig config;
  config.threshold = 6;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(EmekRosenSetCover(config).Run(stream));
  ExpectSameOutcome(direct,
                    RunRegistry(system, "emek_rosen", {"threshold=6"}));
}

TEST(SolverRegistryRoundTripTest, OnePass) {
  const SetSystem system = SmallInstance(7);
  OnePassConfig config;
  config.min_gain_fraction = 0.125;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(OnePassSetCover(config).Run(stream));
  ExpectSameOutcome(
      direct, RunRegistry(system, "one_pass", {"min_gain_fraction=0.125"}));
}

TEST(SolverRegistryRoundTripTest, ThresholdGreedy) {
  const SetSystem system = SmallInstance(8);
  ThresholdGreedyConfig config;
  config.beta = 4.0;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(ThresholdGreedySetCover(config).Run(stream));
  ExpectSameOutcome(direct,
                    RunRegistry(system, "threshold_greedy", {"beta=4"}));
}

TEST(SolverRegistryRoundTripTest, SieveMc) {
  const SetSystem system = SmallInstance(9);
  SieveMcConfig config;
  config.epsilon = 0.25;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(SieveMaxCoverage(config).Run(stream, 3));
  ExpectSameOutcome(direct,
                    RunRegistry(system, "sieve_mc", {"epsilon=0.25", "k=3"}));
}

TEST(SolverRegistryRoundTripTest, ElementSamplingMc) {
  const SetSystem system = SmallInstance(10);
  ElementSamplingMcConfig config;
  config.epsilon = 0.25;
  config.seed = 5;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(ElementSamplingMaxCoverage(config).Run(stream, 3));
  ExpectSameOutcome(
      direct, RunRegistry(system, "element_sampling_mc",
                          {"epsilon=0.25", "seed=5", "k=3"}));
}

TEST(SolverRegistryRoundTripTest, PairFinder) {
  const SetSystem system = SmallPairInstance();
  PairFinderConfig config;
  config.passes = 3;
  VectorSetStream stream(system);
  const SolverOutcome direct =
      ToOutcome(ExactPairFinder(config).Run(stream));
  ExpectSameOutcome(direct,
                    RunRegistry(system, "pair_finder", {"passes=3"}));
}

// ---------------------------------------------------------------------------
// Malformed input: always a Status, never an abort, always actionable.

TEST(SolverRegistryErrorTest, UnknownSolverListsRegisteredNames) {
  StatusOr<std::unique_ptr<AnySolver>> result =
      SolverRegistry::Global().Create("asadi", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("asadi"), std::string::npos);
  EXPECT_NE(result.status().message().find("assadi"), std::string::npos);
}

TEST(SolverRegistryErrorTest, UnknownKeyNamesSolverKeyAndAlternatives) {
  StatusOr<std::unique_ptr<AnySolver>> result =
      SolverRegistry::Global().Create("assadi", {"alhpa=2"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("assadi"), std::string::npos);
  EXPECT_NE(msg.find("alhpa"), std::string::npos);
  EXPECT_NE(msg.find("alpha"), std::string::npos);  // the valid-keys list
}

TEST(SolverRegistryErrorTest, OutOfRangeQuotesValueAndLegalRange) {
  StatusOr<std::unique_ptr<AnySolver>> result =
      SolverRegistry::Global().Create("assadi", {"alpha=0"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  const std::string& msg = result.status().message();
  EXPECT_NE(msg.find("alpha"), std::string::npos);
  EXPECT_NE(msg.find("'0'"), std::string::npos);
  EXPECT_NE(msg.find("[1, inf)"), std::string::npos);
}

TEST(SolverRegistryErrorTest, TypeMismatchQuotesOffendingValue) {
  StatusOr<std::unique_ptr<AnySolver>> result =
      SolverRegistry::Global().Create("assadi", {"alpha=two"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("'two'"), std::string::npos);
}

TEST(SolverRegistryErrorTest, MalformedShapesAllReport) {
  // Every class of malformed key=value input, across several solvers.
  // Each must produce !ok — and, being a gtest (not a death test), this
  // also proves none of them aborts the process.
  const struct {
    const char* solver;
    const char* arg;
  } kCases[] = {
      {"assadi", "alpha"},                    // no '='
      {"assadi", "=2"},                       // empty key
      {"assadi", "alpha="},                   // empty value
      {"assadi", "alpha=-1"},                 // negative uint
      {"assadi", "alpha=2.5"},                // fractional uint
      {"assadi", "epsilon=0"},                // open lower bound
      {"assadi", "epsilon=nan"},              // non-finite double
      {"assadi", "epsilon=x"},                // not a number
      {"assadi", "use_exact_subsolver=maybe"},// bad bool literal
      {"assadi", "seed=99999999999999999999"},// uint64 overflow
      {"threshold_greedy", "beta=1"},         // exclusive bound hit
      {"threshold_greedy", "beta=0.5"},       // below range
      {"one_pass", "min_gain_fraction=1.5"},  // above range
      {"one_pass", "min_gain_fraction=-0.1"}, // below range
      {"sieve_mc", "epsilon=1"},              // open upper bound
      {"sieve_mc", "k=0"},                    // k must be >= 1
      {"element_sampling_mc", "epsilon=1.0"}, // open upper bound
      {"pair_finder", "passes=0"},            // p >= 1
      {"pair_finder", "max_candidates=0"},    // cap >= 1
  };
  for (const auto& c : kCases) {
    StatusOr<std::unique_ptr<AnySolver>> result =
        SolverRegistry::Global().Create(c.solver, {c.arg});
    EXPECT_FALSE(result.ok()) << c.solver << " accepted '" << c.arg << "'";
  }
}

TEST(SolverRegistryErrorTest, DuplicateKeyReports) {
  StatusOr<std::unique_ptr<AnySolver>> result =
      SolverRegistry::Global().Create("assadi", {"alpha=2", "alpha=3"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("more than once"),
            std::string::npos);
}

// Property fuzz: pseudo-random garbage key=value strings thrown at every
// solver. Create() must return (ok or error) on every input — this suite
// running to completion is the no-abort proof. Valid creations are also
// exercised end to end on a small stream.
TEST(SolverRegistryPropertyTest, FuzzedOptionStringsNeverAbort) {
  const SetSystem system = SmallInstance(42);
  Rng rng(20260729);
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789=._-+eE ";
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  std::size_t created = 0;
  for (std::size_t trial = 0; trial < 400; ++trial) {
    const std::string& solver = names[rng.UniformInt(names.size())];
    std::vector<std::string> args;
    const std::size_t num_args = rng.UniformInt(4);
    for (std::size_t a = 0; a < num_args; ++a) {
      std::string arg;
      const std::size_t len = 1 + rng.UniformInt(24);
      for (std::size_t i = 0; i < len; ++i) {
        arg += charset[rng.UniformInt(charset.size())];
      }
      args.push_back(arg);
    }
    StatusOr<std::unique_ptr<AnySolver>> result =
        SolverRegistry::Global().Create(solver, args);
    if (result.ok()) {
      ++created;
      VectorSetStream stream(system);
      StatusOr<SolveReport> report = (*result)->Run(stream, RunContext{});
      // Stream-dependent misuse (e.g. a fuzzed emek_rosen threshold
      // larger than n) must also come back as a Status.
      (void)report;
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Sanity: defaults-only trials (num_args == 0) must all have succeeded,
  // so the fuzz genuinely exercised the success path too.
  EXPECT_GT(created, 0u);
}

// ---------------------------------------------------------------------------
// The validation asymmetry, side by side: the registry reports bad user
// input as Status; the identical misuse through the raw config struct
// keeps its STREAMSC_CHECK crash (programmer bug, release-armed).

TEST(SolverRegistryDeathTest, StructMisuseStillDiesWhereRegistryReports) {
  // threshold_greedy beta = 1: registry -> Status...
  EXPECT_FALSE(
      SolverRegistry::Global().Create("threshold_greedy", {"beta=1"}).ok());
  // ...struct -> death.
  ThresholdGreedyConfig beta_config;
  beta_config.beta = 1.0;
  EXPECT_DEATH(ThresholdGreedySetCover{beta_config}, "beta");

  // assadi epsilon = 0: registry -> Status; struct -> death.
  EXPECT_FALSE(
      SolverRegistry::Global().Create("assadi", {"epsilon=0"}).ok());
  AssadiConfig eps_config;
  eps_config.epsilon = 0.0;
  EXPECT_DEATH(AssadiSetCover{eps_config}, "epsilon");

  // emek_rosen threshold > n is stream-dependent: registry -> Status at
  // Run(); struct -> death at Run().
  const SetSystem system = SmallInstance(11);
  StatusOr<std::unique_ptr<AnySolver>> solver =
      SolverRegistry::Global().Create("emek_rosen", {"threshold=100000"});
  ASSERT_TRUE(solver.ok());
  VectorSetStream registry_stream(system);
  StatusOr<SolveReport> report =
      (*solver)->Run(registry_stream, RunContext{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kOutOfRange);

  EmekRosenConfig threshold_config;
  threshold_config.threshold = 100000;
  EmekRosenSetCover direct(threshold_config);
  VectorSetStream direct_stream(system);
  EXPECT_DEATH(direct.Run(direct_stream), "threshold");
}

}  // namespace
}  // namespace streamsc
