// SolveSession: the owning front door. One session = one sniffed source
// (in-memory / ssc1 text / sscb1 mmap); each Solve() binds a per-run
// engine from the session-level `threads` option and returns a uniform
// SolveReport. These tests pin the sniffing, the cross-source solution
// identity, the text-source threads upgrade, and the promise that every
// user-input failure is a Status, never an abort.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "api/solve_session.h"
#include "instance/generators.h"
#include "instance/serialization.h"
#include "storage/binary_instance_writer.h"
#include "testing/scoped_temp_dir.h"
#include "util/random.h"

namespace streamsc {
namespace {

using testing::ScopedTempDir;

SetSystem SessionInstance() {
  Rng rng(17);
  return PlantedCoverInstance(96, 12, 3, rng);
}

struct SessionFixture {
  SessionFixture() : system(SessionInstance()) {
    text_path = dir.FilePath("inst.ssc");
    binary_path = dir.FilePath("inst.sscb1");
    EXPECT_TRUE(SaveSetSystem(system, text_path).ok());
    EXPECT_TRUE(BinaryInstanceWriter::WriteSystem(system, binary_path).ok());
  }

  ScopedTempDir dir;
  SetSystem system;
  std::string text_path;
  std::string binary_path;
};

TEST(SolveSessionTest, SniffsTextAndBinarySources) {
  SessionFixture fx;
  StatusOr<SolveSession> text = SolveSession::Open(fx.text_path);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(text->source(), SolveSession::Source::kFile);
  EXPECT_EQ(text->universe_size(), fx.system.universe_size());
  EXPECT_EQ(text->num_sets(), fx.system.num_sets());

  StatusOr<SolveSession> binary = SolveSession::Open(fx.binary_path);
  ASSERT_TRUE(binary.ok()) << binary.status().ToString();
  EXPECT_EQ(binary->source(), SolveSession::Source::kMmap);
  EXPECT_EQ(binary->universe_size(), fx.system.universe_size());
}

TEST(SolveSessionTest, OpenMissingFileReports) {
  StatusOr<SolveSession> session =
      SolveSession::Open("/nonexistent/definitely/not/here.ssc");
  EXPECT_FALSE(session.ok());
}

TEST(SolveSessionTest, OpenFifoReportsInvalidArgumentWithoutHanging) {
  // Regression: Open() sniffs the format before any hardened reader runs,
  // and the sniff (IsBinaryInstanceFile) plus the text fallback both used
  // blocking std::ifstream opens — so a FIFO path hung the session-open
  // path forever even after MmapFile::Open itself was fixed. The whole
  // chain must come straight back with a typed error.
  ScopedTempDir dir;
  const std::string path = dir.FilePath("pipe.fifo");
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << std::strerror(errno);
  StatusOr<SolveSession> session = SolveSession::Open(path);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(session.status().message().find("FIFO"), std::string::npos)
      << session.status().ToString();
}

TEST(SolveSessionTest, OpenGarbageFileReports) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("garbage.bin");
  ASSERT_TRUE(SaveSetSystem(SessionInstance(), path).ok());
  // Corrupt the header line so the text parser rejects it.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not an instance at all\n";
  }
  StatusOr<SolveSession> session = SolveSession::Open(path);
  EXPECT_FALSE(session.ok());
}

TEST(SolveSessionTest, TruncatedTextBodyReportsInsteadOfSolvingAPrefix) {
  // The ssc1 header parses (so Open() succeeds), but the body declares
  // more sets than it contains. FileSetStream reports that only through
  // status() after the first pass ends early — the session must surface
  // it as a Status, not return a feasible report over the prefix.
  ScopedTempDir dir;
  const std::string path = dir.FilePath("truncated.ssc");
  {
    std::ofstream out(path);
    out << "ssc1 8 4\n"      // claims 4 sets...
        << "2 0 1\n"
        << "2 2 3\n";         // ...delivers 2
  }
  StatusOr<SolveSession> session = SolveSession::Open(path);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StatusOr<SolveReport> report = session->Solve("one_pass", {});
  EXPECT_FALSE(report.ok());
}

TEST(SolveSessionTest, AllSourcesProduceIdenticalSolutions) {
  SessionFixture fx;
  const std::vector<std::string> args = {"alpha=2", "epsilon=0.5"};

  SolveSession memory = SolveSession::OverSystem(fx.system);
  StatusOr<SolveReport> mem_report = memory.Solve("assadi", args);
  ASSERT_TRUE(mem_report.ok()) << mem_report.status().ToString();
  EXPECT_TRUE(mem_report->feasible);
  EXPECT_EQ(mem_report->source, "memory");
  EXPECT_EQ(mem_report->threads, 1u);

  StatusOr<SolveSession> text = SolveSession::Open(fx.text_path);
  ASSERT_TRUE(text.ok());
  StatusOr<SolveReport> text_report = text->Solve("assadi", args);
  ASSERT_TRUE(text_report.ok()) << text_report.status().ToString();
  EXPECT_EQ(text_report->source, "file");
  EXPECT_EQ(text_report->solution.chosen, mem_report->solution.chosen);

  StatusOr<SolveSession> binary = SolveSession::Open(fx.binary_path);
  ASSERT_TRUE(binary.ok());
  StatusOr<SolveReport> binary_report = binary->Solve("assadi", args);
  ASSERT_TRUE(binary_report.ok()) << binary_report.status().ToString();
  EXPECT_EQ(binary_report->source, "mmap");
  EXPECT_EQ(binary_report->solution.chosen, mem_report->solution.chosen);
}

TEST(SolveSessionTest, ThreadsUpgradeTextSourceAndPreserveBytes) {
  SessionFixture fx;
  SolveSession memory = SolveSession::OverSystem(fx.system);
  StatusOr<SolveReport> baseline =
      memory.Solve("threshold_greedy", {"beta=2"});
  ASSERT_TRUE(baseline.ok());

  StatusOr<SolveSession> text = SolveSession::Open(fx.text_path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->source(), SolveSession::Source::kFile);
  StatusOr<SolveReport> sharded =
      text->Solve("threshold_greedy", {"beta=2", "threads=4"});
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  // The text source cannot buffer a pass; the session upgraded it to
  // memory so the 4-thread engine genuinely shards — same bytes out.
  EXPECT_EQ(text->source(), SolveSession::Source::kMemory);
  EXPECT_EQ(sharded->source, "memory");
  EXPECT_EQ(sharded->threads, 4u);
  EXPECT_EQ(sharded->solution.chosen, baseline->solution.chosen);
  EXPECT_EQ(sharded->stats.sets_taken, baseline->stats.sets_taken);
  EXPECT_EQ(sharded->stats.elements_covered,
            baseline->stats.elements_covered);
}

TEST(SolveSessionTest, MmapSourceShardsWithoutUpgrade) {
  SessionFixture fx;
  StatusOr<SolveSession> binary = SolveSession::Open(fx.binary_path);
  ASSERT_TRUE(binary.ok());
  StatusOr<SolveReport> report =
      binary->Solve("assadi", {"alpha=2", "threads=8"});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(binary->source(), SolveSession::Source::kMmap);
  EXPECT_EQ(report->source, "mmap");
  EXPECT_EQ(report->threads, 8u);
  EXPECT_TRUE(report->feasible);
}

TEST(SolveSessionTest, MaxCoverageAndPairFamiliesReportTheirScalars) {
  SessionFixture fx;
  SolveSession session = SolveSession::OverSystem(fx.system);
  StatusOr<SolveReport> mc = session.Solve("sieve_mc", {"k=2"});
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  EXPECT_EQ(mc->kind, SolverKind::kMaxCoverage);
  EXPECT_TRUE(mc->feasible);
  EXPECT_GT(mc->extra, 0u);  // exact coverage of the returned sets

  // A planted 2-cover instance for the pair finder.
  SetSystem pair_system(64);
  std::vector<ElementId> low, high;
  for (ElementId e = 0; e < 64; ++e) (e < 32 ? low : high).push_back(e);
  pair_system.AddSetFromIndices(low);
  pair_system.AddSetFromIndices(high);
  SolveSession pair_session = SolveSession::OverSystem(pair_system);
  StatusOr<SolveReport> pair = pair_session.Solve("pair_finder", {});
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  EXPECT_EQ(pair->kind, SolverKind::kPairFinder);
  EXPECT_TRUE(pair->feasible);
  EXPECT_EQ(pair->solution.size(), 2u);
}

TEST(SolveSessionTest, UserInputFailuresAreStatusesNeverAborts) {
  SessionFixture fx;
  SolveSession session = SolveSession::OverSystem(fx.system);

  // Unknown solver.
  EXPECT_FALSE(session.Solve("nope", {}).ok());
  // Bad solver option (shape / range / type).
  EXPECT_FALSE(session.Solve("assadi", {"alpha=0"}).ok());
  EXPECT_FALSE(session.Solve("assadi", {"bogus=1"}).ok());
  // Bad session option: threads is a uint >= 1.
  StatusOr<SolveReport> zero = session.Solve("assadi", {"threads=0"});
  ASSERT_FALSE(zero.ok());
  EXPECT_NE(zero.status().message().find("threads"), std::string::npos);
  EXPECT_FALSE(session.Solve("assadi", {"threads=lots"}).ok());
  // Stream-dependent misuse: emek_rosen threshold > n.
  StatusOr<SolveReport> big =
      session.Solve("emek_rosen", {"threshold=100000"});
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kOutOfRange);
  // The session still works after all those failures.
  EXPECT_TRUE(session.Solve("assadi", {}).ok());
}

// --- The Reopen reuse contract ----------------------------------------
// A session is re-targetable in place (the daemon's warm-slot shape).
// The pinned contract: a failed Reopen leaves the session *empty* — not
// half-bound to the previous stream — and a later successful Reopen on
// the very same session behaves exactly like a fresh Open.

TEST(SolveSessionReopenTest, FailedReopenDetachesThePreviousSource) {
  SessionFixture fx;
  StatusOr<SolveSession> session = SolveSession::Open(fx.binary_path);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Solve("assadi", {"alpha=2"}).ok());

  // Reopen on a missing file fails...
  EXPECT_FALSE(session->Reopen("/nonexistent/definitely/gone.sscb1").ok());
  // ...and the session is now empty: no stale mmap keeps serving.
  EXPECT_EQ(session->source(), SolveSession::Source::kNone);
  EXPECT_EQ(session->universe_size(), 0u);
  StatusOr<SolveReport> report = session->Solve("assadi", {"alpha=2"});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveSessionReopenTest, SuccessAfterFailureMatchesAFreshOpen) {
  SessionFixture fx;
  // Baseline from a fresh session.
  StatusOr<SolveSession> fresh = SolveSession::Open(fx.binary_path);
  ASSERT_TRUE(fresh.ok());
  StatusOr<SolveReport> baseline = fresh->Solve("assadi", {"alpha=2"});
  ASSERT_TRUE(baseline.ok());

  // Interleave failing and succeeding opens on ONE session: text OK,
  // garbage FAIL, binary OK, missing FAIL, binary OK — the surviving
  // state must only ever reflect the last success (or be empty).
  ScopedTempDir dir;
  const std::string garbage = dir.FilePath("garbage.ssc");
  {
    std::ofstream out(garbage);
    out << "not an instance at all\n";
  }
  SolveSession session;
  ASSERT_TRUE(session.Reopen(fx.text_path).ok());
  EXPECT_EQ(session.source(), SolveSession::Source::kFile);
  ASSERT_FALSE(session.Reopen(garbage).ok());
  EXPECT_EQ(session.source(), SolveSession::Source::kNone);
  ASSERT_TRUE(session.Reopen(fx.binary_path).ok());
  EXPECT_EQ(session.source(), SolveSession::Source::kMmap);
  ASSERT_FALSE(session.Reopen("/nonexistent/nope.ssc").ok());
  ASSERT_TRUE(session.Reopen(fx.binary_path).ok());

  StatusOr<SolveReport> report = session.Solve("assadi", {"alpha=2"});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->source, "mmap");
  EXPECT_EQ(report->solution.chosen, baseline->solution.chosen);
}

TEST(SolveSessionReopenTest, ReopenClearsTheTextUpgradeAndParseError) {
  SessionFixture fx;
  // Drive a text session through the threads>1 memory upgrade, then
  // Reopen: the owned system must not leak into the new source's state.
  StatusOr<SolveSession> session = SolveSession::Open(fx.text_path);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Solve("threshold_greedy", {"beta=2", "threads=2"})
                  .ok());
  EXPECT_EQ(session->source(), SolveSession::Source::kMemory);
  ASSERT_TRUE(session->Reopen(fx.text_path).ok());
  EXPECT_EQ(session->source(), SolveSession::Source::kFile);
  StatusOr<SolveReport> report =
      session->Solve("threshold_greedy", {"beta=2"});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->source, "file");

  // And a truncated-body text source whose Solve failed must not poison
  // the session after a Reopen onto a good file.
  ScopedTempDir dir;
  const std::string truncated = dir.FilePath("truncated.ssc");
  {
    std::ofstream out(truncated);
    out << "ssc1 8 4\n"
        << "2 0 1\n";
  }
  ASSERT_TRUE(session->Reopen(truncated).ok());
  EXPECT_FALSE(session->Solve("one_pass", {}).ok());
  ASSERT_TRUE(session->Reopen(fx.text_path).ok());
  EXPECT_TRUE(session->Solve("one_pass", {}).ok());
}

TEST(SolveSessionTest, EmptySessionSolveReports) {
  SolveSession empty;
  StatusOr<SolveReport> report = empty.Solve("assadi", {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SolveSessionTest, SessionOptionsDocumentThreads) {
  const std::vector<OptionDescriptor>& options =
      SolveSession::SessionOptions();
  ASSERT_FALSE(options.empty());
  bool found = false;
  for (const OptionDescriptor& desc : options) {
    if (desc.name == "threads") {
      found = true;
      EXPECT_EQ(desc.type, OptionType::kUint);
      EXPECT_FALSE(desc.doc.empty());
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace streamsc
