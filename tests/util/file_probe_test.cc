// ProbeRegularFile: the non-blocking gate every blocking open in the
// stack hides behind. The regression pinned here is the sniff-path hang:
// format detection (IsBinaryInstanceFile) and the text readers open with
// std::ifstream, and an ifstream open of an unfed FIFO blocks forever —
// so a FIFO handed to `workload_tool solve` (or a daemon --instance
// flag) wedged the process even after MmapFile::Open itself was
// hardened. The probe must answer immediately for every file kind.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>

#include "testing/scoped_temp_dir.h"
#include "util/file_probe.h"

namespace streamsc {
namespace {

using testing::ScopedTempDir;

TEST(FileProbeTest, RegularFileIsOk) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("plain.txt");
  std::ofstream(path) << "hello";
  EXPECT_TRUE(ProbeRegularFile(path).ok());
}

TEST(FileProbeTest, EmptyRegularFileIsOk) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("empty");
  std::ofstream touch(path);
  touch.close();
  EXPECT_TRUE(ProbeRegularFile(path).ok());
}

TEST(FileProbeTest, MissingPathIsNotFound) {
  ScopedTempDir dir;
  const Status status = ProbeRegularFile(dir.FilePath("absent"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(FileProbeTest, FifoIsInvalidArgumentWithoutBlocking) {
  ScopedTempDir dir;
  const std::string path = dir.FilePath("pipe.fifo");
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << std::strerror(errno);
  // No writer ever attaches; a blocking probe would hang here.
  const Status status = ProbeRegularFile(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("FIFO"), std::string::npos)
      << status.ToString();
}

TEST(FileProbeTest, DirectoryIsInvalidArgument) {
  ScopedTempDir dir;
  const Status status = ProbeRegularFile(dir.path().string());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("directory"), std::string::npos)
      << status.ToString();
}

TEST(FileProbeTest, CharacterDeviceIsInvalidArgument) {
  const Status status = ProbeRegularFile("/dev/null");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("character device"), std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace streamsc
