#include "util/bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/random.h"

namespace streamsc {
namespace {

TEST(BitsetTest, DefaultIsEmpty) {
  DynamicBitset bs;
  EXPECT_EQ(bs.size(), 0u);
  EXPECT_TRUE(bs.None());
  EXPECT_EQ(bs.CountSet(), 0u);
}

TEST(BitsetTest, SetAndTest) {
  DynamicBitset bs(100);
  EXPECT_FALSE(bs.Test(5));
  bs.Set(5);
  EXPECT_TRUE(bs.Test(5));
  EXPECT_FALSE(bs.Test(4));
  EXPECT_FALSE(bs.Test(6));
}

TEST(BitsetTest, ResetClearsBit) {
  DynamicBitset bs(100);
  bs.Set(63);
  bs.Set(64);
  bs.Reset(63);
  EXPECT_FALSE(bs.Test(63));
  EXPECT_TRUE(bs.Test(64));
}

TEST(BitsetTest, CountSetAcrossWordBoundaries) {
  DynamicBitset bs(130);
  bs.Set(0);
  bs.Set(63);
  bs.Set(64);
  bs.Set(127);
  bs.Set(128);
  bs.Set(129);
  EXPECT_EQ(bs.CountSet(), 6u);
}

TEST(BitsetTest, FullSetsEverything) {
  const DynamicBitset bs = DynamicBitset::Full(70);
  EXPECT_EQ(bs.CountSet(), 70u);
  EXPECT_TRUE(bs.All());
  EXPECT_TRUE(bs.Test(69));
}

TEST(BitsetTest, FullTrimsTailBits) {
  // Size not a multiple of 64: no phantom bits beyond size.
  DynamicBitset bs = DynamicBitset::Full(65);
  EXPECT_EQ(bs.CountSet(), 65u);
  bs.Complement();
  EXPECT_EQ(bs.CountSet(), 0u);
  EXPECT_TRUE(bs.None());
}

TEST(BitsetTest, ClearRemovesEverything) {
  DynamicBitset bs = DynamicBitset::Full(50);
  bs.Clear();
  EXPECT_TRUE(bs.None());
}

TEST(BitsetTest, ComplementFlips) {
  DynamicBitset bs(10);
  bs.Set(3);
  bs.Complement();
  EXPECT_FALSE(bs.Test(3));
  EXPECT_EQ(bs.CountSet(), 9u);
}

TEST(BitsetTest, ComplementIsInvolution) {
  Rng rng(7);
  DynamicBitset bs = rng.BernoulliSubset(137, 0.3);
  DynamicBitset copy = bs;
  bs.Complement();
  bs.Complement();
  EXPECT_EQ(bs, copy);
}

TEST(BitsetTest, UnionOperator) {
  DynamicBitset a(10), b(10);
  a.Set(1);
  b.Set(2);
  const DynamicBitset u = a | b;
  EXPECT_TRUE(u.Test(1));
  EXPECT_TRUE(u.Test(2));
  EXPECT_EQ(u.CountSet(), 2u);
}

TEST(BitsetTest, IntersectionOperator) {
  DynamicBitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  const DynamicBitset i = a & b;
  EXPECT_EQ(i.CountSet(), 1u);
  EXPECT_TRUE(i.Test(2));
}

TEST(BitsetTest, AndNotDifference) {
  DynamicBitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  a.AndNot(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_FALSE(a.Test(2));
}

TEST(BitsetTest, DifferenceDoesNotMutate) {
  DynamicBitset a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  const DynamicBitset d = a.Difference(b);
  EXPECT_EQ(d.CountSet(), 1u);
  EXPECT_EQ(a.CountSet(), 2u);  // unchanged
}

TEST(BitsetTest, CountAndMatchesMaterializedIntersection) {
  Rng rng(3);
  const DynamicBitset a = rng.BernoulliSubset(500, 0.4);
  const DynamicBitset b = rng.BernoulliSubset(500, 0.4);
  EXPECT_EQ(a.CountAnd(b), (a & b).CountSet());
}

TEST(BitsetTest, CountAndNotMatchesMaterializedDifference) {
  Rng rng(4);
  const DynamicBitset a = rng.BernoulliSubset(500, 0.4);
  const DynamicBitset b = rng.BernoulliSubset(500, 0.4);
  EXPECT_EQ(a.CountAndNot(b), a.Difference(b).CountSet());
}

TEST(BitsetTest, IntersectsDetection) {
  DynamicBitset a(200), b(200);
  a.Set(150);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(150);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitsetTest, SubsetRelation) {
  DynamicBitset a(100), b(100);
  a.Set(10);
  b.Set(10);
  b.Set(20);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(DynamicBitset(100).IsSubsetOf(a));  // empty set
}

TEST(BitsetTest, FindFirstOnEmpty) {
  DynamicBitset bs(100);
  EXPECT_EQ(bs.FindFirst(), kInvalidElementId);
}

TEST(BitsetTest, FindFirstAndNextWalkAllBits) {
  DynamicBitset bs(300);
  const std::set<ElementId> expected = {0, 63, 64, 65, 128, 255, 299};
  for (ElementId e : expected) bs.Set(e);
  std::set<ElementId> walked;
  for (ElementId e = bs.FindFirst(); e != kInvalidElementId;
       e = bs.FindNext(e)) {
    walked.insert(e);
  }
  EXPECT_EQ(walked, expected);
}

TEST(BitsetTest, FindNextPastEnd) {
  DynamicBitset bs(64);
  bs.Set(63);
  EXPECT_EQ(bs.FindNext(63), kInvalidElementId);
}

TEST(BitsetTest, ToIndicesSortedAndComplete) {
  Rng rng(11);
  const DynamicBitset bs = rng.BernoulliSubset(400, 0.25);
  const std::vector<ElementId> indices = bs.ToIndices();
  EXPECT_TRUE(std::is_sorted(indices.begin(), indices.end()));
  EXPECT_EQ(indices.size(), bs.CountSet());
  for (ElementId e : indices) EXPECT_TRUE(bs.Test(e));
}

TEST(BitsetTest, FromIndicesRoundTrip) {
  const std::vector<ElementId> indices = {3, 17, 99};
  const DynamicBitset bs = DynamicBitset::FromIndices(100, indices);
  EXPECT_EQ(bs.ToIndices(), indices);
}

TEST(BitsetTest, ForEachVisitsInOrder) {
  DynamicBitset bs(150);
  bs.Set(149);
  bs.Set(2);
  bs.Set(70);
  std::vector<ElementId> visited;
  bs.ForEach([&](ElementId e) { visited.push_back(e); });
  EXPECT_EQ(visited, (std::vector<ElementId>{2, 70, 149}));
}

TEST(BitsetTest, HammingDistanceSymmetricDifference) {
  DynamicBitset a(100), b(100);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  EXPECT_EQ(b.HammingDistance(a), 2u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
}

TEST(BitsetTest, EqualityIncludesSize) {
  DynamicBitset a(10), b(11);
  EXPECT_FALSE(a == b);
  DynamicBitset c(10);
  EXPECT_TRUE(a == c);
  c.Set(0);
  EXPECT_FALSE(a == c);
}

TEST(BitsetTest, HashDiffersOnContentAndSize) {
  DynamicBitset a(64), b(64), c(65);
  b.Set(12);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  DynamicBitset a2(64);
  EXPECT_EQ(a.Hash(), a2.Hash());
}

TEST(BitsetTest, ByteSizeWholeWords) {
  EXPECT_EQ(DynamicBitset(1).ByteSize(), 8u);
  EXPECT_EQ(DynamicBitset(64).ByteSize(), 8u);
  EXPECT_EQ(DynamicBitset(65).ByteSize(), 16u);
  EXPECT_EQ(DynamicBitset(0).ByteSize(), 0u);
}

TEST(BitsetTest, ToStringRendersElements) {
  DynamicBitset bs(10);
  bs.Set(0);
  bs.Set(7);
  EXPECT_EQ(bs.ToString(), "{0, 7}");
  EXPECT_EQ(DynamicBitset(5).ToString(), "{}");
}

// ---- Property-style sweeps across universe sizes. -------------------------

class BitsetPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetPropertyTest, DeMorganUnionIntersection) {
  const std::size_t n = GetParam();
  Rng rng(n * 31 + 1);
  DynamicBitset a = rng.BernoulliSubset(n, 0.3);
  DynamicBitset b = rng.BernoulliSubset(n, 0.6);
  // ~(a | b) == ~a & ~b
  DynamicBitset lhs = a | b;
  lhs.Complement();
  DynamicBitset na = a, nb = b;
  na.Complement();
  nb.Complement();
  EXPECT_EQ(lhs, na & nb);
}

TEST_P(BitsetPropertyTest, InclusionExclusionCounts) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 5);
  const DynamicBitset a = rng.BernoulliSubset(n, 0.5);
  const DynamicBitset b = rng.BernoulliSubset(n, 0.5);
  EXPECT_EQ((a | b).CountSet() + a.CountAnd(b), a.CountSet() + b.CountSet());
}

TEST_P(BitsetPropertyTest, HammingViaCounts) {
  const std::size_t n = GetParam();
  Rng rng(n * 13 + 7);
  const DynamicBitset a = rng.BernoulliSubset(n, 0.4);
  const DynamicBitset b = rng.BernoulliSubset(n, 0.4);
  EXPECT_EQ(a.HammingDistance(b), a.CountAndNot(b) + b.CountAndNot(a));
}

TEST_P(BitsetPropertyTest, DifferencePartition) {
  const std::size_t n = GetParam();
  Rng rng(n + 99);
  const DynamicBitset a = rng.BernoulliSubset(n, 0.5);
  const DynamicBitset b = rng.BernoulliSubset(n, 0.5);
  // a = (a \ b) ∪ (a ∩ b), disjointly.
  const DynamicBitset diff = a.Difference(b);
  const DynamicBitset inter = a & b;
  EXPECT_FALSE(diff.Intersects(inter));
  EXPECT_EQ(diff | inter, a);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetPropertyTest,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 129, 777,
                                           4096));

}  // namespace
}  // namespace streamsc
