#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/function_ref.h"

namespace streamsc {
namespace {

TEST(MonotonicArenaTest, AllocationsAreAlignedAndDisjoint) {
  MonotonicArena arena;
  auto* a = arena.Allocate<std::uint8_t>(3);
  auto* b = arena.Allocate<std::uint64_t>(2);
  auto* c = arena.Allocate<std::uint8_t>(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint64_t), 0u);
  std::memset(a, 0xAA, 3);
  b[0] = 1;
  b[1] = 2;
  *c = 0xBB;
  EXPECT_EQ(a[0], 0xAA);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 2u);
  EXPECT_EQ(*c, 0xBB);
  // used_ counts requested bytes only, independent of padding.
  EXPECT_EQ(arena.bytes_used(), 3 + 16 + 1u);
}

TEST(MonotonicArenaTest, GrowsAcrossChunks) {
  MonotonicArena::Options options;
  options.initial_chunk_bytes = 1024;
  options.max_chunk_bytes = 4096;
  MonotonicArena arena(options);
  std::vector<unsigned char*> blocks;
  for (int i = 0; i < 64; ++i) {
    auto* p = arena.Allocate<unsigned char>(512);
    std::memset(p, i, 512);
    blocks.push_back(p);
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(blocks[i][0], static_cast<unsigned char>(i));
    EXPECT_EQ(blocks[i][511], static_cast<unsigned char>(i));
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 64u * 512u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(MonotonicArenaTest, OversizedRequestGetsDedicatedChunk) {
  MonotonicArena::Options options;
  options.initial_chunk_bytes = 1024;
  options.max_chunk_bytes = 2048;
  MonotonicArena arena(options);
  auto* big = arena.Allocate<unsigned char>(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 1 << 20);
  EXPECT_EQ(big[0], 0xCD);
  EXPECT_EQ(big[(1 << 20) - 1], 0xCD);
}

TEST(MonotonicArenaTest, ResetRetainsChunksAndAllowsWarmReplay) {
  MonotonicArena arena;
  for (int i = 0; i < 100; ++i) arena.Allocate<std::uint64_t>(100);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  const std::size_t high = arena.high_water();
  EXPECT_EQ(high, 100u * 100u * 8u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);

  // Warm replay of the same sequence: no new chunks.
  for (int i = 0; i < 100; ++i) arena.Allocate<std::uint64_t>(100);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.high_water(), high);
}

TEST(MonotonicArenaTest, RewindRestoresPosition) {
  MonotonicArena arena;
  arena.Allocate<std::uint64_t>(10);
  const MonotonicArena::Mark mark = arena.Position();
  const std::size_t used_at_mark = arena.bytes_used();
  for (int i = 0; i < 1000; ++i) arena.Allocate<std::uint64_t>(64);
  arena.Rewind(mark);
  EXPECT_EQ(arena.bytes_used(), used_at_mark);
  // Allocation after rewind reuses the same region.
  auto* p = arena.Allocate<std::uint64_t>(1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.bytes_used(), used_at_mark + 8);
}

TEST(MonotonicArenaTest, CheckpointIsRaiiRewind) {
  MonotonicArena arena;
  arena.Allocate<int>(4);
  const std::size_t base = arena.bytes_used();
  {
    ArenaCheckpoint checkpoint(arena);
    arena.Allocate<int>(1024);
    EXPECT_GT(arena.bytes_used(), base);
  }
  EXPECT_EQ(arena.bytes_used(), base);
}

TEST(MonotonicArenaTest, BudgetThrowsArenaBudgetExceeded) {
  MonotonicArena::Options options;
  options.budget_bytes = 4096;
  MonotonicArena arena(options);
  arena.Allocate<unsigned char>(4000);
  EXPECT_THROW(arena.Allocate<unsigned char>(200), ArenaBudgetExceeded);
  // The failed allocation must not corrupt the arena.
  auto* p = arena.Allocate<unsigned char>(50);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.bytes_used(), 4050u);

  try {
    arena.Allocate<unsigned char>(1 << 20);
    FAIL() << "expected ArenaBudgetExceeded";
  } catch (const ArenaBudgetExceeded& e) {
    EXPECT_EQ(e.budget(), 4096u);
    EXPECT_EQ(e.attempted(), 4050u + (1u << 20));
  }
}

TEST(MonotonicArenaTest, BudgetVerdictIsWarmthInvariant) {
  // The same allocation sequence must hit the budget at the same step on
  // a cold arena and on a warm (Reset) one.
  const auto run = [](MonotonicArena& arena) {
    int steps = 0;
    try {
      for (int i = 0; i < 10000; ++i) {
        arena.Allocate<unsigned char>(100 + (i % 37));
        ++steps;
      }
    } catch (const ArenaBudgetExceeded&) {
    }
    return steps;
  };
  MonotonicArena::Options options;
  options.initial_chunk_bytes = 2048;
  options.budget_bytes = 100000;
  MonotonicArena arena(options);
  const int cold = run(arena);
  arena.Reset();
  const int warm = run(arena);
  EXPECT_EQ(cold, warm);
  EXPECT_LT(cold, 10000);
}

TEST(MonotonicArenaTest, SetBudgetTakesEffectOnNextAllocation) {
  MonotonicArena arena;
  arena.Allocate<unsigned char>(1 << 16);
  EXPECT_EQ(arena.budget(), 0u);
  arena.set_budget(1);
  EXPECT_THROW(arena.Allocate<unsigned char>(1), ArenaBudgetExceeded);
  arena.set_budget(0);
  EXPECT_NE(arena.Allocate<unsigned char>(1 << 16), nullptr);
}

TEST(MonotonicArenaTest, ReleaseChunksReturnsToCold) {
  MonotonicArena arena;
  arena.Allocate<std::uint64_t>(1 << 12);
  arena.ReleaseChunks();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  auto* p = arena.Allocate<std::uint64_t>(8);
  ASSERT_NE(p, nullptr);
}

TEST(ArenaAllocatorTest, VectorOnArenaAndHeapFallback) {
  MonotonicArena arena;
  ArenaVector<int> on_arena{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) on_arena.push_back(i);
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_EQ(on_arena.size(), 1000u);
  EXPECT_EQ(std::accumulate(on_arena.begin(), on_arena.end(), 0),
            999 * 1000 / 2);

  ArenaVector<int> on_heap;  // default-constructed: heap binding
  on_heap.assign(on_arena.begin(), on_arena.end());
  EXPECT_EQ(on_heap.get_allocator().binding(), ArenaBinding::kHeap);
  EXPECT_TRUE(on_heap == on_arena);
}

TEST(ArenaAllocatorTest, MovePreservesArenaCopyGoesToHeap) {
  MonotonicArena arena;
  ArenaVector<int> source{ArenaAllocator<int>(&arena)};
  source.assign({1, 2, 3});

  ArenaVector<int> moved = std::move(source);
  EXPECT_EQ(moved.get_allocator().arena(), &arena);
  EXPECT_EQ(moved.get_allocator().binding(), ArenaBinding::kPinned);

  ArenaVector<int> copied = moved;  // select_on_copy -> heap
  EXPECT_EQ(copied.get_allocator().binding(), ArenaBinding::kHeap);
  EXPECT_TRUE(copied == moved);
}

TEST(ArenaAllocatorTest, CrossAllocatorEqualityAgainstStdVector) {
  MonotonicArena arena;
  ArenaVector<int> a{ArenaAllocator<int>(&arena)};
  a.assign({5, 6, 7});
  const std::vector<int> b = {5, 6, 7};
  const std::vector<int> c = {5, 6};
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(b == a);
  EXPECT_TRUE(a != c);
  EXPECT_TRUE(c != a);
}

TEST(ArenaAllocatorTest, UnorderedMapOnArena) {
  MonotonicArena arena;
  using Alloc = ArenaAllocator<std::pair<const int, int>>;
  std::unordered_map<int, int, std::hash<int>, std::equal_to<int>, Alloc> map(
      8, std::hash<int>(), std::equal_to<int>(), Alloc(&arena));
  for (int i = 0; i < 500; ++i) map[i] = i * i;
  EXPECT_EQ(map.at(21), 441);
  EXPECT_GT(arena.bytes_used(), 500u * sizeof(std::pair<const int, int>));
}

TEST(ArenaAllocatorTest, ScratchBindingResolvesThreadLocal) {
  const std::size_t before = ThreadScratchArena().bytes_used();
  {
    ArenaVector<int> v{ArenaAllocator<int>::Scratch()};
    v.assign(1000, 7);
    EXPECT_GT(ThreadScratchArena().bytes_used(), before);
  }
  // Deallocation is a no-op; reclaim is via rewind.
  MonotonicArena::Mark mark{};
  (void)mark;
  ThreadScratchArena().Rewind(MonotonicArena::Mark{0, 0, 0});
  ThreadScratchArena().Reset();
  EXPECT_EQ(ThreadScratchArena().bytes_used(), 0u);
}

TEST(ArenaAllocatorTest, TableAndScratchAreDistinctArenas) {
  EXPECT_NE(&ThreadScratchArena(), &ThreadTableArena());
  EXPECT_FALSE(ArenaAllocator<int>::Scratch() == ArenaAllocator<int>::Table());
}

TEST(FunctionRefTest, InvokesWithoutOwnership) {
  int calls = 0;
  std::uint64_t sum = 0;
  // Deliberately large capture: would force std::function to allocate.
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  const auto fn = [&](std::size_t i) {
    ++calls;
    sum += a + b + c + d + i;
  };
  FunctionRef<void(std::size_t)> ref = fn;
  ref(10);
  ref(20);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(sum, 2 * (1 + 2 + 3 + 4) + 30u);
}

TEST(FunctionRefTest, ReturnsValues) {
  const auto doubler = [](int x) { return 2 * x; };
  FunctionRef<int(int)> ref = doubler;
  EXPECT_EQ(ref(21), 42);
}

}  // namespace
}  // namespace streamsc
