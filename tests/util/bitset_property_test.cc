#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/bitset.h"
#include "util/random.h"

namespace streamsc {
namespace {

// Reference-model property suite: every DynamicBitset operation is checked
// against std::set<ElementId> semantics over randomized universes and
// contents. Complements the example-based tests in bitset_test.cc.

using RefSet = std::set<ElementId>;

RefSet ToRef(const DynamicBitset& bits) {
  RefSet out;
  bits.ForEach([&](ElementId e) { out.insert(e); });
  return out;
}

DynamicBitset FromRef(std::size_t n, const RefSet& ref) {
  DynamicBitset out(n);
  for (ElementId e : ref) out.Set(e);
  return out;
}

struct RandomPair {
  std::size_t n;
  DynamicBitset a, b;
  RefSet ra, rb;
};

RandomPair MakePair(std::uint64_t seed) {
  Rng rng(seed);
  // Universe sizes straddling word boundaries on purpose.
  const std::size_t sizes[] = {1, 63, 64, 65, 127, 128, 200, 1000};
  const std::size_t n = sizes[seed % 8];
  RandomPair out{n, DynamicBitset(n), DynamicBitset(n), {}, {}};
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.4)) {
      out.a.Set(i);
      out.ra.insert(i);
    }
    if (rng.Bernoulli(0.4)) {
      out.b.Set(i);
      out.rb.insert(i);
    }
  }
  return out;
}

class BitsetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitsetModelTest, UnionMatchesModel) {
  RandomPair p = MakePair(GetParam());
  RefSet expected = p.ra;
  expected.insert(p.rb.begin(), p.rb.end());
  EXPECT_EQ(ToRef(p.a | p.b), expected);
  DynamicBitset inplace = p.a;
  inplace |= p.b;
  EXPECT_EQ(inplace, FromRef(p.n, expected));
}

TEST_P(BitsetModelTest, IntersectionMatchesModel) {
  RandomPair p = MakePair(GetParam());
  RefSet expected;
  std::set_intersection(p.ra.begin(), p.ra.end(), p.rb.begin(), p.rb.end(),
                        std::inserter(expected, expected.begin()));
  EXPECT_EQ(ToRef(p.a & p.b), expected);
  EXPECT_EQ(p.a.CountAnd(p.b), expected.size());
  EXPECT_EQ(p.a.Intersects(p.b), !expected.empty());
}

TEST_P(BitsetModelTest, DifferenceMatchesModel) {
  RandomPair p = MakePair(GetParam());
  RefSet expected;
  std::set_difference(p.ra.begin(), p.ra.end(), p.rb.begin(), p.rb.end(),
                      std::inserter(expected, expected.begin()));
  EXPECT_EQ(ToRef(p.a.Difference(p.b)), expected);
  EXPECT_EQ(p.a.CountAndNot(p.b), expected.size());
  DynamicBitset inplace = p.a;
  inplace.AndNot(p.b);
  EXPECT_EQ(inplace, FromRef(p.n, expected));
}

TEST_P(BitsetModelTest, ComplementMatchesModel) {
  RandomPair p = MakePair(GetParam());
  RefSet expected;
  for (std::size_t i = 0; i < p.n; ++i) {
    if (!p.ra.count(static_cast<ElementId>(i))) {
      expected.insert(static_cast<ElementId>(i));
    }
  }
  DynamicBitset complement = p.a;
  complement.Complement();
  EXPECT_EQ(ToRef(complement), expected);
  // Double complement is the identity (tail bits must stay trimmed).
  complement.Complement();
  EXPECT_EQ(complement, p.a);
}

TEST_P(BitsetModelTest, HammingDistanceMatchesModel) {
  RandomPair p = MakePair(GetParam());
  RefSet sym;
  std::set_symmetric_difference(p.ra.begin(), p.ra.end(), p.rb.begin(),
                                p.rb.end(),
                                std::inserter(sym, sym.begin()));
  EXPECT_EQ(p.a.HammingDistance(p.b), sym.size());
}

TEST_P(BitsetModelTest, SubsetAndCountsMatchModel) {
  RandomPair p = MakePair(GetParam());
  EXPECT_EQ(p.a.CountSet(), p.ra.size());
  EXPECT_EQ(p.a.None(), p.ra.empty());
  EXPECT_EQ(p.a.All(), p.ra.size() == p.n);
  const bool subset =
      std::includes(p.rb.begin(), p.rb.end(), p.ra.begin(), p.ra.end());
  EXPECT_EQ(p.a.IsSubsetOf(p.b), subset);
  EXPECT_TRUE(p.a.IsSubsetOf(p.a));
  EXPECT_TRUE((p.a & p.b).IsSubsetOf(p.a));
}

TEST_P(BitsetModelTest, IterationOrderAndNavigation) {
  RandomPair p = MakePair(GetParam());
  const std::vector<ElementId> indices = p.a.ToIndices();
  EXPECT_TRUE(std::is_sorted(indices.begin(), indices.end()));
  EXPECT_EQ(RefSet(indices.begin(), indices.end()), p.ra);
  if (!indices.empty()) {
    EXPECT_EQ(p.a.FindFirst(), indices.front());
    for (std::size_t i = 0; i + 1 < indices.size(); ++i) {
      EXPECT_EQ(p.a.FindNext(indices[i]), indices[i + 1]);
    }
    EXPECT_EQ(p.a.FindNext(indices.back()), kInvalidElementId);
  } else {
    EXPECT_EQ(p.a.FindFirst(), kInvalidElementId);
  }
}

TEST_P(BitsetModelTest, HashAgreesWithEquality) {
  RandomPair p = MakePair(GetParam());
  DynamicBitset copy = p.a;
  EXPECT_EQ(copy.Hash(), p.a.Hash());
  if (p.n >= 2 && !(p.a == p.b)) {
    EXPECT_NE(p.a.Hash(), p.b.Hash());  // collision astronomically unlikely
  }
}

TEST_P(BitsetModelTest, RoundTripThroughIndices) {
  RandomPair p = MakePair(GetParam());
  EXPECT_EQ(DynamicBitset::FromIndices(p.n, p.a.ToIndices()), p.a);
}

// No operation may leave stray bits in the last word beyond size():
// a stray tail bit would corrupt CountSet, ForEach, and Hash. Checked
// indirectly but exhaustively: every enumerated element is < size(),
// the popcount never exceeds size(), and the rebuilt set compares equal.
void ExpectTailInvariant(const DynamicBitset& bits) {
  bits.ForEach([&](ElementId e) { EXPECT_LT(e, bits.size()); });
  EXPECT_LE(bits.CountSet(), bits.size());
  EXPECT_EQ(DynamicBitset::FromIndices(bits.size(), bits.ToIndices()), bits);
}

TEST_P(BitsetModelTest, TailWordInvariantAfterComplementAndFill) {
  RandomPair p = MakePair(GetParam());
  DynamicBitset complemented = p.a;
  complemented.Complement();
  ExpectTailInvariant(complemented);
  EXPECT_EQ(complemented.CountSet(), p.n - p.a.CountSet());

  DynamicBitset filled = p.a;
  filled.Fill();
  ExpectTailInvariant(filled);
  EXPECT_TRUE(filled.All());
  EXPECT_EQ(filled, DynamicBitset::Full(p.n));

  // Complement of full is empty — only true if Fill left no tail bits.
  filled.Complement();
  EXPECT_TRUE(filled.None());
  ExpectTailInvariant(filled);
}

TEST_P(BitsetModelTest, FindNextBoundaryCases) {
  RandomPair p = MakePair(GetParam());

  // From the last universe position there is never a next element.
  EXPECT_EQ(p.a.FindNext(p.n - 1), kInvalidElementId);

  // Empty set: FindFirst and every FindNext are invalid.
  const DynamicBitset empty(p.n);
  EXPECT_EQ(empty.FindFirst(), kInvalidElementId);
  EXPECT_EQ(empty.FindNext(0), kInvalidElementId);
  EXPECT_EQ(empty.FindNext(p.n - 1), kInvalidElementId);

  // Set containing only the last element: reachable from every i < n-1.
  DynamicBitset last_only(p.n);
  last_only.Set(p.n - 1);
  EXPECT_EQ(last_only.FindFirst(), p.n - 1);
  if (p.n >= 2) {
    EXPECT_EQ(last_only.FindNext(0), p.n - 1);
    EXPECT_EQ(last_only.FindNext(p.n - 2), p.n - 1);
  }
  EXPECT_EQ(last_only.FindNext(p.n - 1), kInvalidElementId);

  // Chaining FindFirst/FindNext enumerates exactly ToIndices().
  std::vector<ElementId> walked;
  for (ElementId e = p.a.FindFirst(); e != kInvalidElementId;
       e = p.a.FindNext(e)) {
    walked.push_back(e);
  }
  EXPECT_EQ(walked, p.a.ToIndices());
}

INSTANTIATE_TEST_SUITE_P(RandomizedUniverses, BitsetModelTest,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace streamsc
