#include "util/sparse_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"
#include "util/set_view.h"

namespace streamsc {
namespace {

TEST(SparseSetTest, EmptySet) {
  const SparseSet set(10);
  EXPECT_EQ(set.size(), 10u);
  EXPECT_EQ(set.CountSet(), 0u);
  EXPECT_TRUE(set.None());
  EXPECT_FALSE(set.All());
  EXPECT_FALSE(set.Test(3));
  EXPECT_EQ(set.ByteSize(), 0u);
}

TEST(SparseSetTest, FromIndicesSortsAndDeduplicates) {
  const SparseSet set = SparseSet::FromIndices(10, {7, 2, 2, 5, 7});
  EXPECT_EQ(set.CountSet(), 3u);
  EXPECT_EQ(set.elements(), (std::vector<ElementId>{2, 5, 7}));
  EXPECT_TRUE(set.Test(5));
  EXPECT_FALSE(set.Test(3));
}

TEST(SparseSetTest, FullSet) {
  const SparseSet set = SparseSet::FromIndices(3, {0, 1, 2});
  EXPECT_TRUE(set.All());
  EXPECT_FALSE(set.None());
}

TEST(SparseSetTest, BitsetRoundTrip) {
  const SparseSet set = SparseSet::FromIndices(100, {0, 17, 63, 64, 99});
  const DynamicBitset dense = set.ToBitset();
  EXPECT_EQ(dense.CountSet(), 5u);
  EXPECT_EQ(SparseSet::FromBitset(dense), set);
}

TEST(SparseSetTest, CountsAgainstDense) {
  const SparseSet set = SparseSet::FromIndices(20, {1, 5, 9, 13});
  DynamicBitset other(20);
  other.Set(5);
  other.Set(13);
  other.Set(14);
  EXPECT_EQ(set.CountAnd(other), 2u);
  EXPECT_EQ(set.CountAndNot(other), 2u);
  EXPECT_TRUE(set.Intersects(other));
  EXPECT_FALSE(set.IsSubsetOf(other));
  other.Set(1);
  other.Set(9);
  EXPECT_TRUE(set.IsSubsetOf(other));
}

TEST(SparseSetTest, AndNotIntoAndOrInto) {
  const SparseSet set = SparseSet::FromIndices(8, {1, 3});
  DynamicBitset target = DynamicBitset::Full(8);
  set.AndNotInto(target);
  EXPECT_EQ(target.CountSet(), 6u);
  EXPECT_FALSE(target.Test(1));
  set.OrInto(target);
  EXPECT_TRUE(target.All());
}

TEST(SparseSetTest, ForEachVisitsInOrder) {
  const SparseSet set = SparseSet::FromIndices(50, {40, 3, 17});
  std::vector<ElementId> seen;
  set.ForEach([&seen](ElementId e) { seen.push_back(e); });
  EXPECT_EQ(seen, (std::vector<ElementId>{3, 17, 40}));
}

TEST(SparseSetTest, ToString) {
  EXPECT_EQ(SparseSet::FromIndices(9, {0, 3, 7}).ToString(), "{0, 3, 7}");
}

TEST(SparseSetDeathTest, FromSortedIndicesRejectsUnsorted) {
  EXPECT_DEATH(SparseSet::FromSortedIndices(10, {3, 1}), "sorted");
}

TEST(SparseSetDeathTest, FromIndicesRejectsOutOfUniverse) {
  EXPECT_DEATH(SparseSet::FromIndices(4, {4}), "universe");
}

// Property: dense -> sparse -> dense and sparse -> dense -> sparse are
// the identity for randomized contents, and SetView sees identical
// semantics through either representation.
TEST(SparseSetPropertyTest, ConversionRoundTripsAndViewAgreement) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed);
    const std::size_t sizes[] = {1, 63, 64, 65, 127, 128, 200, 1000};
    const std::size_t n = sizes[seed % 8];
    const DynamicBitset dense = rng.BernoulliSubset(n, 0.2);
    const SparseSet sparse = SparseSet::FromBitset(dense);

    EXPECT_EQ(sparse.ToBitset(), dense);
    EXPECT_EQ(SparseSet::FromBitset(sparse.ToBitset()), sparse);
    EXPECT_EQ(sparse.CountSet(), dense.CountSet());
    EXPECT_EQ(sparse.ToIndices(), dense.ToIndices());

    const DynamicBitset probe = rng.BernoulliSubset(n, 0.5);
    EXPECT_EQ(sparse.CountAnd(probe), dense.CountAnd(probe));
    EXPECT_EQ(sparse.CountAndNot(probe), dense.CountAndNot(probe));
    EXPECT_EQ(sparse.Intersects(probe), dense.Intersects(probe));
    EXPECT_EQ(sparse.IsSubsetOf(probe), dense.IsSubsetOf(probe));

    DynamicBitset via_sparse = probe;
    sparse.AndNotInto(via_sparse);
    EXPECT_EQ(via_sparse, probe.Difference(dense));

    // The two representations are equal through SetView.
    EXPECT_TRUE(SetView(sparse) == SetView(dense));
  }
}

}  // namespace
}  // namespace streamsc
