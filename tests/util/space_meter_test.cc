#include "util/space_meter.h"

#include <gtest/gtest.h>

namespace streamsc {
namespace {

TEST(SpaceMeterTest, StartsAtZero) {
  SpaceMeter meter;
  EXPECT_EQ(meter.current(), 0u);
  EXPECT_EQ(meter.peak(), 0u);
}

TEST(SpaceMeterTest, ChargeAccumulates) {
  SpaceMeter meter;
  meter.Charge(100);
  meter.Charge(50);
  EXPECT_EQ(meter.current(), 150u);
  EXPECT_EQ(meter.peak(), 150u);
}

TEST(SpaceMeterTest, PeakSurvivesRelease) {
  SpaceMeter meter;
  meter.Charge(100);
  meter.Release(60);
  EXPECT_EQ(meter.current(), 40u);
  EXPECT_EQ(meter.peak(), 100u);
}

TEST(SpaceMeterTest, PeakTracksMaximum) {
  SpaceMeter meter;
  meter.Charge(100);
  meter.Release(100);
  meter.Charge(70);
  EXPECT_EQ(meter.peak(), 100u);
  meter.Charge(80);
  EXPECT_EQ(meter.peak(), 150u);
}

TEST(SpaceMeterTest, CategoriesAreIndependent) {
  SpaceMeter meter;
  meter.Charge(100, "a");
  meter.Charge(50, "b");
  EXPECT_EQ(meter.CategoryCurrent("a"), 100u);
  EXPECT_EQ(meter.CategoryCurrent("b"), 50u);
  EXPECT_EQ(meter.CategoryCurrent("missing"), 0u);
  meter.Release(30, "a");
  EXPECT_EQ(meter.CategoryCurrent("a"), 70u);
  EXPECT_EQ(meter.current(), 120u);
}

TEST(SpaceMeterTest, SetCategoryAdjustsUpAndDown) {
  SpaceMeter meter;
  meter.SetCategory(100, "x");
  EXPECT_EQ(meter.current(), 100u);
  meter.SetCategory(40, "x");
  EXPECT_EQ(meter.current(), 40u);
  EXPECT_EQ(meter.peak(), 100u);
  meter.SetCategory(40, "x");  // no-op
  EXPECT_EQ(meter.current(), 40u);
}

TEST(SpaceMeterTest, ResetZeroesEverything) {
  SpaceMeter meter;
  meter.Charge(100, "a");
  meter.Reset();
  EXPECT_EQ(meter.current(), 0u);
  EXPECT_EQ(meter.peak(), 0u);
  EXPECT_EQ(meter.CategoryCurrent("a"), 0u);
}

}  // namespace
}  // namespace streamsc
