#include "util/status.h"

#include <gtest/gtest.h>

namespace streamsc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpers) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad alpha");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad alpha");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("gone"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace streamsc
