#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamsc {
namespace {

TEST(MathTest, SafeLogClampsSmallArguments) {
  EXPECT_DOUBLE_EQ(SafeLog(0.0), 0.0);
  EXPECT_DOUBLE_EQ(SafeLog(0.5), 0.0);
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
  EXPECT_NEAR(SafeLog(std::exp(1.0)), 1.0, 1e-12);
}

TEST(MathTest, SafeLog2ClampsToOne) {
  EXPECT_DOUBLE_EQ(SafeLog2(0.0), 1.0);
  EXPECT_DOUBLE_EQ(SafeLog2(2.0), 1.0);
  EXPECT_DOUBLE_EQ(SafeLog2(8.0), 3.0);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2u);
  EXPECT_EQ(CeilDiv(11, 5), 3u);
  EXPECT_EQ(CeilDiv(0, 5), 0u);
  EXPECT_EQ(CeilDiv(1, 1), 1u);
}

TEST(MathTest, HarmonicNumberSmall) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_NEAR(HarmonicNumber(2), 1.5, 1e-12);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(MathTest, HarmonicNumberAsymptoticMatchesExact) {
  // The asymptotic branch (n > 1024) must agree with direct summation.
  double exact = 0.0;
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 1; i <= n; ++i) exact += 1.0 / i;
  EXPECT_NEAR(HarmonicNumber(n), exact, 1e-9);
}

TEST(MathTest, LogBinomialKnownValues) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-9);
  EXPECT_EQ(LogBinomial(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(MathTest, LogBinomialSymmetry) {
  EXPECT_NEAR(LogBinomial(100, 30), LogBinomial(100, 70), 1e-9);
}

TEST(MathTest, PowZeroExponentIsOne) {
  EXPECT_DOUBLE_EQ(Pow(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Pow(5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Pow(2.0, 3.0), 8.0);
}

TEST(MathTest, NthRoot) {
  EXPECT_NEAR(NthRoot(1024.0, 2.0), 32.0, 1e-9);
  EXPECT_NEAR(NthRoot(1024.0, 10.0), 2.0, 1e-9);
  EXPECT_NEAR(NthRoot(7.0, 1.0), 7.0, 1e-9);
}

TEST(MathTest, DisjUniverseSizeFormula) {
  // t = t_scale * (n / ln m)^(1/alpha); n=4096, m=64 -> n/ln m ~ 984.8.
  const std::uint64_t t = DisjUniverseSize(4096, 64, 2.0, 1.0);
  EXPECT_NEAR(static_cast<double>(t),
              std::floor(std::sqrt(4096.0 / std::log(64.0))), 1.0);
}

TEST(MathTest, DisjUniverseSizeClampedToAtLeastOne) {
  // The paper's 2^-15 scale collapses t at laptop sizes; must clamp to 1.
  EXPECT_GE(DisjUniverseSize(1024, 64, 2.0, 1.0 / 32768.0), 1u);
}

TEST(MathTest, DisjUniverseSizeMonotoneInN) {
  const std::uint64_t t1 = DisjUniverseSize(1024, 64, 2.0, 1.0);
  const std::uint64_t t2 = DisjUniverseSize(65536, 64, 2.0, 1.0);
  EXPECT_LT(t1, t2);
}

TEST(MathTest, DisjUniverseSizeShrinksWithAlpha) {
  const std::uint64_t t_small_alpha = DisjUniverseSize(65536, 64, 1.0, 1.0);
  const std::uint64_t t_big_alpha = DisjUniverseSize(65536, 64, 4.0, 1.0);
  EXPECT_GT(t_small_alpha, t_big_alpha);
}

TEST(MathTest, ElementSamplingRateFormula) {
  // p = 16 k ln(m) / (rho n).
  const double p = ElementSamplingRate(10000, 100, 2, 0.1, 1.0);
  EXPECT_NEAR(p, 16.0 * 2 * std::log(100.0) / (0.1 * 10000.0), 1e-12);
}

TEST(MathTest, ElementSamplingRateClampedToOne) {
  EXPECT_DOUBLE_EQ(ElementSamplingRate(10, 100, 50, 0.01, 1.0), 1.0);
}

TEST(MathTest, ElementSamplingRateBoostScales) {
  const double p1 = ElementSamplingRate(100000, 100, 2, 0.1, 1.0);
  const double p2 = ElementSamplingRate(100000, 100, 2, 0.1, 2.0);
  EXPECT_NEAR(p2, 2.0 * p1, 1e-12);
}

TEST(MathTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 3.0}), 1.0, 1e-12);
}

TEST(MathTest, QuantileInterpolates) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace streamsc
