#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace streamsc {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter table({"name", "value"});
  table.BeginRow();
  table.AddCell("alpha");
  table.AddCell(std::uint64_t{2});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "b"});
  table.BeginRow();
  table.AddCell("longvalue");
  table.AddCell("x");
  std::ostringstream os;
  table.Print(os);
  // Header row must be padded to the widest cell.
  std::istringstream lines(os.str());
  std::string header, rule, row;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(header.size(), rule.size());
}

TEST(TablePrinterTest, DoublePrecision) {
  TablePrinter table({"v"});
  table.BeginRow();
  table.AddCell(3.14159, 2);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(TablePrinterTest, NumRows) {
  TablePrinter table({"v"});
  EXPECT_EQ(table.NumRows(), 0u);
  table.BeginRow();
  table.AddCell(1);
  table.BeginRow();
  table.AddCell(2);
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.BeginRow();
  table.AddCell(1);
  table.AddCell(2);
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, TitleBanner) {
  TablePrinter table({"a"});
  std::ostringstream os;
  table.PrintWithTitle(os, "My Experiment");
  EXPECT_NE(os.str().find("== My Experiment =="), std::string::npos);
}

TEST(HumanBytesTest, Formats) {
  EXPECT_EQ(HumanBytes(12), "12 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.00 MiB");
}

}  // namespace
}  // namespace streamsc
