#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace streamsc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

TEST(RngTest, UniformIntBoundOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntApproximatelyUniform) {
  Rng rng(9);
  const int buckets = 8;
  const int trials = 80000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformInt(buckets)];
  const double expected = static_cast<double>(trials) / buckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateMatches) {
  Rng rng(11);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, RandomSubsetOfSizeExact) {
  Rng rng(12);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const DynamicBitset s = rng.RandomSubsetOfSize(100, k);
    EXPECT_EQ(s.CountSet(), k);
    EXPECT_EQ(s.size(), 100u);
  }
}

TEST(RngTest, RandomSubsetUniformMarginals) {
  Rng rng(13);
  const std::size_t n = 20, k = 5;
  std::vector<int> hits(n, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    rng.RandomSubsetOfSize(n, k).ForEach([&](ElementId e) { ++hits[e]; });
  }
  const double expected = trials * static_cast<double>(k) / n;
  for (int h : hits) EXPECT_NEAR(h, expected, 6 * std::sqrt(expected));
}

TEST(RngTest, BernoulliSubsetEdgeRates) {
  Rng rng(14);
  EXPECT_TRUE(rng.BernoulliSubset(100, 0.0).None());
  EXPECT_TRUE(rng.BernoulliSubset(100, 1.0).All());
}

TEST(RngTest, BernoulliSubsetRate) {
  Rng rng(15);
  const std::size_t n = 100000;
  const DynamicBitset s = rng.BernoulliSubset(n, 0.2);
  EXPECT_NEAR(static_cast<double>(s.CountSet()) / n, 0.2, 0.01);
}

TEST(RngTest, BernoulliSubsampleStaysWithinBase) {
  Rng rng(16);
  const DynamicBitset base = rng.BernoulliSubset(1000, 0.5);
  const DynamicBitset sub = rng.BernoulliSubsample(base, 0.5);
  EXPECT_TRUE(sub.IsSubsetOf(base));
  EXPECT_GT(sub.CountSet(), 0u);
  EXPECT_LT(sub.CountSet(), base.CountSet());
}

TEST(RngTest, BernoulliSubsampleFullRate) {
  Rng rng(17);
  const DynamicBitset base = rng.BernoulliSubset(500, 0.3);
  EXPECT_EQ(rng.BernoulliSubsample(base, 1.0), base);
  EXPECT_TRUE(rng.BernoulliSubsample(base, 0.0).None());
}

TEST(RngTest, RandomPermutationIsPermutation) {
  Rng rng(18);
  const auto perm = rng.RandomPermutation(257);
  std::set<std::uint32_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 257u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 256u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 2, 3, 5, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(20);
  Rng child = a.Fork();
  // Parent and child disagree on the next values.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, StdAdaptorInterface) {
  Rng rng(21);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
  const std::uint64_t v = rng();
  (void)v;
}

// Regression: probabilities outside [0, 1] were silently forwarded.
// Contract: p >= 1 returns the whole base, p <= 0 (and NaN) the empty
// set — for both the subsample and the from-scratch subset samplers.
TEST(RngTest, BernoulliSubsampleClampsProbability) {
  Rng rng(22);
  const DynamicBitset base = rng.BernoulliSubset(200, 0.5);
  EXPECT_EQ(rng.BernoulliSubsample(base, 1.0), base);
  EXPECT_EQ(rng.BernoulliSubsample(base, 2.5), base);
  EXPECT_TRUE(rng.BernoulliSubsample(base, 0.0).None());
  EXPECT_TRUE(rng.BernoulliSubsample(base, -1.0).None());
  EXPECT_TRUE(
      rng.BernoulliSubsample(base, std::nan("")).None());
  // In-range rates still produce a strict-subset-or-equal sample.
  EXPECT_TRUE(rng.BernoulliSubsample(base, 0.3).IsSubsetOf(base));
}

TEST(RngTest, BernoulliSubsetClampsProbability) {
  Rng rng(23);
  EXPECT_TRUE(rng.BernoulliSubset(64, 1.5).All());
  EXPECT_TRUE(rng.BernoulliSubset(64, -0.5).None());
  EXPECT_TRUE(rng.BernoulliSubset(64, std::nan("")).None());
}

}  // namespace
}  // namespace streamsc
