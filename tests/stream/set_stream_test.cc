#include "stream/set_stream.h"

#include <gtest/gtest.h>

#include <set>

#include "instance/generators.h"

namespace streamsc {
namespace {

SetSystem MakeSystem(std::size_t m) {
  SetSystem system(8);
  for (std::size_t i = 0; i < m; ++i) {
    system.AddSetFromIndices({static_cast<ElementId>(i % 8)});
  }
  return system;
}

TEST(SetStreamTest, AdversarialOrderIsInsertionOrder) {
  const SetSystem system = MakeSystem(5);
  VectorSetStream stream(system);
  stream.BeginPass();
  StreamItem item;
  for (SetId expected = 0; expected < 5; ++expected) {
    ASSERT_TRUE(stream.Next(&item));
    EXPECT_EQ(item.id, expected);
    EXPECT_TRUE(item.set == system.set(expected));
  }
  EXPECT_FALSE(stream.Next(&item));
}

TEST(SetStreamTest, PassCounterIncrements) {
  const SetSystem system = MakeSystem(3);
  VectorSetStream stream(system);
  EXPECT_EQ(stream.passes(), 0u);
  stream.BeginPass();
  EXPECT_EQ(stream.passes(), 1u);
  stream.BeginPass();
  stream.BeginPass();
  EXPECT_EQ(stream.passes(), 3u);
}

TEST(SetStreamTest, EachPassYieldsAllItems) {
  const SetSystem system = MakeSystem(7);
  VectorSetStream stream(system);
  for (int pass = 0; pass < 3; ++pass) {
    stream.BeginPass();
    std::size_t count = 0;
    StreamItem item;
    while (stream.Next(&item)) ++count;
    EXPECT_EQ(count, 7u);
  }
}

TEST(SetStreamTest, RandomOnceIsAPermutation) {
  const SetSystem system = MakeSystem(20);
  Rng rng(1);
  VectorSetStream stream(system, StreamOrder::kRandomOnce, &rng);
  stream.BeginPass();
  std::set<SetId> seen;
  StreamItem item;
  while (stream.Next(&item)) seen.insert(item.id);
  EXPECT_EQ(seen.size(), 20u);
}

TEST(SetStreamTest, RandomOnceStableAcrossPasses) {
  const SetSystem system = MakeSystem(20);
  Rng rng(2);
  VectorSetStream stream(system, StreamOrder::kRandomOnce, &rng);
  std::vector<SetId> first, second;
  StreamItem item;
  stream.BeginPass();
  while (stream.Next(&item)) first.push_back(item.id);
  stream.BeginPass();
  while (stream.Next(&item)) second.push_back(item.id);
  EXPECT_EQ(first, second);
}

TEST(SetStreamTest, RandomOnceActuallyShuffles) {
  const SetSystem system = MakeSystem(50);
  Rng rng(3);
  VectorSetStream stream(system, StreamOrder::kRandomOnce, &rng);
  stream.BeginPass();
  std::vector<SetId> order;
  StreamItem item;
  while (stream.Next(&item)) order.push_back(item.id);
  std::vector<SetId> identity(50);
  for (SetId i = 0; i < 50; ++i) identity[i] = i;
  EXPECT_NE(order, identity);  // 1/50! chance of flake
}

TEST(SetStreamTest, RandomEachPassReshuffles) {
  const SetSystem system = MakeSystem(50);
  Rng rng(4);
  VectorSetStream stream(system, StreamOrder::kRandomEachPass, &rng);
  std::vector<SetId> first, second;
  StreamItem item;
  stream.BeginPass();
  while (stream.Next(&item)) first.push_back(item.id);
  stream.BeginPass();
  while (stream.Next(&item)) second.push_back(item.id);
  EXPECT_NE(first, second);  // 1/50! chance of flake
  std::sort(second.begin(), second.end());
  for (SetId i = 0; i < 50; ++i) EXPECT_EQ(second[i], i);
}

TEST(SetStreamTest, MetadataAccessors) {
  const SetSystem system = MakeSystem(4);
  VectorSetStream stream(system);
  EXPECT_EQ(stream.universe_size(), 8u);
  EXPECT_EQ(stream.num_sets(), 4u);
}

TEST(SetStreamTest, EmptySystemStream) {
  SetSystem system(5);
  VectorSetStream stream(system);
  stream.BeginPass();
  StreamItem item;
  EXPECT_FALSE(stream.Next(&item));
}

TEST(SetStreamTest, ReportsItemsRemainValid) {
  const SetSystem system = MakeSystem(2);
  VectorSetStream stream(system);
  EXPECT_TRUE(stream.ItemsRemainValid());
}

// Regression: with a null Rng, the random orders used to hit a debug-only
// assert — a nullptr dereference in release builds. They must abort
// loudly in every build mode instead.
TEST(SetStreamDeathTest, RandomOnceWithNullRngAbortsLoudly) {
  const SetSystem system = MakeSystem(3);
  EXPECT_DEATH(VectorSetStream(system, StreamOrder::kRandomOnce, nullptr),
               "non-null Rng");
}

TEST(SetStreamDeathTest, RandomEachPassWithNullRngAbortsLoudly) {
  const SetSystem system = MakeSystem(3);
  EXPECT_DEATH(VectorSetStream(system, StreamOrder::kRandomEachPass, nullptr),
               "non-null Rng");
}

TEST(SetStreamTest, BorrowedSetsReflectSystemContents) {
  Rng rng(5);
  const SetSystem system = UniformRandomInstance(30, 6, 5, rng);
  VectorSetStream stream(system);
  stream.BeginPass();
  StreamItem item;
  while (stream.Next(&item)) {
    EXPECT_TRUE(item.set == system.set(item.id));
  }
}

}  // namespace
}  // namespace streamsc
