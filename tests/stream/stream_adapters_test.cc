#include "stream/stream_adapters.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "instance/serialization.h"
#include "offline/verifier.h"
#include "testing/scoped_temp_dir.h"

namespace streamsc {
namespace {

SetSystem LeftHalf() {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1});
  system.AddSetFromIndices({2});
  return system;
}

SetSystem RightHalf() {
  SetSystem system(6);
  system.AddSetFromIndices({3, 4});
  system.AddSetFromIndices({5});
  system.AddSetFromIndices({0, 5});
  return system;
}

std::vector<SetId> Drain(SetStream& stream) {
  stream.BeginPass();
  std::vector<SetId> ids;
  StreamItem item;
  while (stream.Next(&item)) ids.push_back(item.id);
  return ids;
}

TEST(ConcatSetStreamTest, AliceThenBobOrderAndIds) {
  const SetSystem left = LeftHalf();
  const SetSystem right = RightHalf();
  VectorSetStream a(left), b(right);
  ConcatSetStream concat(a, b);
  EXPECT_EQ(concat.num_sets(), 5u);
  EXPECT_EQ(concat.universe_size(), 6u);
  EXPECT_EQ(Drain(concat), (std::vector<SetId>{0, 1, 2, 3, 4}));
}

TEST(ConcatSetStreamTest, SecondHalfContentsShifted) {
  const SetSystem left = LeftHalf();
  const SetSystem right = RightHalf();
  VectorSetStream a(left), b(right);
  ConcatSetStream concat(a, b);
  concat.BeginPass();
  StreamItem item;
  std::vector<SetView> seen;
  while (concat.Next(&item)) seen.push_back(item.set);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen[2] == right.set(0));
  EXPECT_TRUE(seen[4] == right.set(2));
}

TEST(ConcatSetStreamTest, MultiplePassesRestart) {
  const SetSystem left = LeftHalf();
  const SetSystem right = RightHalf();
  VectorSetStream a(left), b(right);
  ConcatSetStream concat(a, b);
  EXPECT_EQ(Drain(concat).size(), 5u);
  EXPECT_EQ(Drain(concat).size(), 5u);
  EXPECT_EQ(concat.passes(), 2u);
}

TEST(ConcatSetStreamTest, AlgorithmRunsOverConcat) {
  // The Theorem 1 simulation setting: Alice's sets then Bob's.
  Rng rng(1);
  const SetSystem whole = PlantedCoverInstance(300, 30, 4, rng);
  SetSystem alice(300), bob(300);
  for (SetId id = 0; id < whole.num_sets(); ++id) {
    (id % 2 == 0 ? alice : bob).AddSetFromView(whole.set(id));
  }
  VectorSetStream a(alice), b(bob);
  ConcatSetStream concat(a, b);
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  AssadiSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(concat);
  ASSERT_TRUE(result.feasible);
}

TEST(InterleaveSetStreamTest, AlternatesAndExhaustsBoth) {
  const SetSystem left = LeftHalf();    // ids 0, 1
  const SetSystem right = RightHalf();  // ids 2, 3, 4 after shift
  VectorSetStream a(left), b(right);
  InterleaveSetStream interleave(a, b);
  EXPECT_EQ(Drain(interleave), (std::vector<SetId>{0, 2, 1, 3, 4}));
  EXPECT_EQ(interleave.num_sets(), 5u);
}

TEST(InterleaveSetStreamTest, EmptyFirstStream) {
  SetSystem empty(6);
  const SetSystem right = RightHalf();
  VectorSetStream a(empty), b(right);
  InterleaveSetStream interleave(a, b);
  EXPECT_EQ(Drain(interleave), (std::vector<SetId>{0, 1, 2}));
}

TEST(FileSetStreamTest, StreamsSavedSystem) {
  Rng rng(2);
  const SetSystem original = PlantedCoverInstance(128, 10, 3, rng);
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("stream_adapters.ssc");
  ASSERT_TRUE(SaveSetSystem(original, path).ok());

  FileSetStream stream(path);
  ASSERT_TRUE(stream.status().ok()) << stream.status().ToString();
  EXPECT_EQ(stream.universe_size(), 128u);
  EXPECT_EQ(stream.num_sets(), 10u);

  stream.BeginPass();
  StreamItem item;
  SetId expected = 0;
  while (stream.Next(&item)) {
    EXPECT_EQ(item.id, expected);
    EXPECT_TRUE(item.set == original.set(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 10u);
}

TEST(FileSetStreamTest, MultiplePassesReRead) {
  Rng rng(3);
  const SetSystem original = UniformRandomInstance(64, 8, 16, rng);
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("stream_adapters2.ssc");
  ASSERT_TRUE(SaveSetSystem(original, path).ok());
  FileSetStream stream(path);
  // UniformRandomInstance may append a feasibility patch set, so compare
  // against the generated system's actual count.
  for (int pass = 0; pass < 3; ++pass) {
    stream.BeginPass();
    StreamItem item;
    std::size_t count = 0;
    while (stream.Next(&item)) ++count;
    EXPECT_EQ(count, original.num_sets()) << "pass " << pass;
  }
  EXPECT_EQ(stream.passes(), 3u);
}

TEST(FileSetStreamTest, AlgorithmRunsOverFile) {
  Rng rng(4);
  const SetSystem original = PlantedCoverInstance(256, 24, 4, rng);
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("stream_adapters3.ssc");
  ASSERT_TRUE(SaveSetSystem(original, path).ok());
  FileSetStream stream(path);
  ASSERT_TRUE(stream.status().ok());
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  AssadiSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(original.IsFeasibleCover(result.solution.chosen));
}

TEST(FileSetStreamTest, MissingFileReportsStatus) {
  FileSetStream stream("/nonexistent/foo.ssc");
  EXPECT_FALSE(stream.status().ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kNotFound);
  stream.BeginPass();
  StreamItem item;
  EXPECT_FALSE(stream.Next(&item));
}

TEST(FileSetStreamTest, FifoPathReportsInvalidArgumentWithoutHanging) {
  // Regression: FileSetStream opened with a bare std::ifstream, and an
  // ifstream open of an unfed FIFO blocks forever — so a FIFO path
  // handed to `workload_tool solve` wedged the process before any
  // hardened reader saw it. The pre-open probe must turn this into an
  // immediate typed error.
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("pipe.fifo");
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << std::strerror(errno);
  FileSetStream stream(path);
  ASSERT_FALSE(stream.status().ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stream.status().message().find("FIFO"), std::string::npos)
      << stream.status().ToString();
}

TEST(FileSetStreamTest, MalformedFileReportsStatus) {
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("stream_adapters_bad.ssc");
  {
    std::ofstream out(path);
    out << "not-a-header\n";
  }
  FileSetStream stream(path);
  EXPECT_FALSE(stream.status().ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(FileSetStreamTest, FirstPassParseErrorsReportThroughStatus) {
  // A good header with a corrupt body: the check-status()-then-stream
  // contract covers the first pass, so this stays quiet (no abort).
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("bad_body.ssc");
  {
    std::ofstream out(path);
    out << "ssc1 8 2\n2 0 1\n3 0 99 2\n";  // element 99 out of range
  }
  FileSetStream stream(path);
  ASSERT_TRUE(stream.status().ok());
  stream.BeginPass();
  StreamItem item;
  EXPECT_TRUE(stream.Next(&item));
  EXPECT_FALSE(stream.Next(&item));
  EXPECT_FALSE(stream.status().ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(FileSetStreamTest, ErrorsPastAnAbandonedPassStayQuiet) {
  // A statically corrupt file whose bad line lies beyond the point where
  // pass 1 stopped reading (algorithms abandon passes early, e.g. once
  // everything is covered) must keep reporting through status() on later
  // passes: only a file some pass has parsed end to end can trigger the
  // modified-between-passes abort.
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("late_corruption.ssc");
  {
    std::ofstream out(path);
    out << "ssc1 8 3\n1 0\n1 1\nnot-a-set-line\n";
  }
  FileSetStream stream(path);
  ASSERT_TRUE(stream.status().ok());
  stream.BeginPass();
  StreamItem item;
  EXPECT_TRUE(stream.Next(&item));  // abandon the pass after one item

  stream.BeginPass();  // must not abort: the file never parsed fully
  EXPECT_TRUE(stream.Next(&item));
  EXPECT_TRUE(stream.Next(&item));
  EXPECT_FALSE(stream.Next(&item));  // hits the bad line -> quiet status
  EXPECT_FALSE(stream.status().ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(FileSetStreamDeathTest, TruncationBetweenPassesAborts) {
  // Once a pass has streamed cleanly, a mid-file truncation on a later
  // pass must abort loudly: ending the stream early would silently hand
  // the algorithm a partial instance.
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("truncated.ssc");
  Rng rng(6);
  const SetSystem original = PlantedCoverInstance(64, 8, 3, rng);
  ASSERT_TRUE(SaveSetSystem(original, path).ok());

  FileSetStream stream(path);
  ASSERT_TRUE(stream.status().ok());
  stream.BeginPass();
  StreamItem item;
  std::size_t count = 0;
  while (stream.Next(&item)) ++count;
  ASSERT_EQ(count, original.num_sets());

  {
    std::ofstream out(path, std::ios::trunc);
    out << "ssc1 64 8\n1 0\n";  // header intact, body truncated
  }
  stream.BeginPass();
  EXPECT_TRUE(stream.Next(&item));
  EXPECT_DEATH(
      {
        while (stream.Next(&item)) {
        }
      },
      "truncated or modified between passes");
}

TEST(FileSetStreamDeathTest, DimensionChangeBetweenPassesAborts) {
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("reshaped.ssc");
  Rng rng(7);
  const SetSystem original = PlantedCoverInstance(64, 8, 3, rng);
  ASSERT_TRUE(SaveSetSystem(original, path).ok());

  FileSetStream stream(path);
  ASSERT_TRUE(stream.status().ok());
  stream.BeginPass();
  StreamItem item;
  while (stream.Next(&item)) {
  }

  {
    std::ofstream out(path, std::ios::trunc);
    out << "ssc1 32 1\n1 0\n";  // different n and m
  }
  EXPECT_DEATH(stream.BeginPass(), "dimensions changed between passes");
}

TEST(FileSetStreamDeathTest, DeletionBetweenPassesAborts) {
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("deleted.ssc");
  Rng rng(8);
  const SetSystem original = PlantedCoverInstance(64, 8, 3, rng);
  ASSERT_TRUE(SaveSetSystem(original, path).ok());

  FileSetStream stream(path);
  ASSERT_TRUE(stream.status().ok());
  stream.BeginPass();
  StreamItem item;
  while (stream.Next(&item)) {
  }

  std::filesystem::remove(path);
  EXPECT_DEATH(stream.BeginPass(), "unreadable between passes");
}

TEST(FileSetStreamTest, NestedConcatOfFileAndVector) {
  // Compose adapters: file stream for Alice, in-memory for Bob.
  Rng rng(5);
  const SetSystem whole = PlantedCoverInstance(200, 20, 4, rng);
  SetSystem alice(200), bob(200);
  for (SetId id = 0; id < whole.num_sets(); ++id) {
    (id < 10 ? alice : bob).AddSetFromView(whole.set(id));
  }
  const testing::ScopedTempDir dir;
  const std::string path = dir.FilePath("stream_adapters4.ssc");
  ASSERT_TRUE(SaveSetSystem(alice, path).ok());
  FileSetStream a(path);
  VectorSetStream b(bob);
  ConcatSetStream concat(a, b);
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  AssadiSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(concat);
  EXPECT_TRUE(result.feasible);
}

}  // namespace
}  // namespace streamsc
