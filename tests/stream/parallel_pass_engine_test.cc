#include "stream/parallel_pass_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/sampling.h"
#include "instance/generators.h"
#include "stream/set_stream.h"
#include "util/random.h"

namespace streamsc {
namespace {

TEST(ParallelPassEngineTest, ParallelForCoversEveryIndexExactlyOnce) {
  ParallelPassEngine engine(4);
  EXPECT_EQ(engine.num_threads(), 4u);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  engine.ParallelFor(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelPassEngineTest, ParallelForHandlesEmptyAndReuse) {
  ParallelPassEngine engine(3);
  engine.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
  // The pool is reusable across many jobs.
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    engine.ParallelFor(17, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ParallelPassEngineTest, SingleThreadEngineRunsInline) {
  ParallelPassEngine engine(1);
  std::vector<int> order;
  engine.ParallelFor(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelPassEngineTest, DrainPassBuffersWholePassInOrder) {
  Rng rng(1);
  const SetSystem system = PlantedCoverInstance(128, 12, 4, rng);
  VectorSetStream stream(system);
  ASSERT_TRUE(stream.ItemsRemainValid());
  const std::vector<StreamItem> items = DrainPass(stream);
  ASSERT_EQ(items.size(), 12u);
  EXPECT_EQ(stream.passes(), 1u);
  for (SetId id = 0; id < 12; ++id) {
    EXPECT_EQ(items[id].id, id);
    EXPECT_TRUE(items[id].set == system.set(id));
  }
}

// The determinism contract: ThresholdScan and ProjectAll produce results
// bit-identical to the sequential path for every thread count.
TEST(ParallelPassEngineTest, ThresholdScanMatchesSequentialForAnyThreadCount) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    const SetSystem system = UniformRandomInstance(400, 60, 30, rng);
    VectorSetStream stream(system);
    const std::vector<StreamItem> items = DrainPass(stream);
    const double threshold = 12.0;

    DynamicBitset sequential_uncovered = DynamicBitset::Full(400);
    std::vector<SetId> sequential_taken;
    ThresholdScan(items, threshold, sequential_uncovered, nullptr,
                  [&](SetId id) { sequential_taken.push_back(id); });

    for (const std::size_t threads : {1u, 2u, 8u}) {
      ParallelPassEngine engine(threads);
      DynamicBitset uncovered = DynamicBitset::Full(400);
      std::vector<SetId> taken;
      ThresholdScan(items, threshold, uncovered, &engine,
                    [&](SetId id) { taken.push_back(id); });
      EXPECT_EQ(taken, sequential_taken) << "threads=" << threads;
      EXPECT_EQ(uncovered, sequential_uncovered) << "threads=" << threads;
    }
  }
}

TEST(ParallelPassEngineTest, ProjectAllMatchesSequentialForAnyThreadCount) {
  Rng rng(3);
  const SetSystem system = UniformRandomInstance(600, 40, 25, rng);
  VectorSetStream stream(system);
  const std::vector<StreamItem> items = DrainPass(stream);
  const SubUniverse sub(rng.BernoulliSubset(600, 0.3));

  const std::vector<ProjectedSet> sequential = ProjectAll(sub, items, nullptr);
  ASSERT_EQ(sequential.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const DynamicBitset expected = sub.Project(items[i].set);
    EXPECT_TRUE(ViewOf(sequential[i]) == SetView(expected));
  }

  for (const std::size_t threads : {2u, 8u}) {
    ParallelPassEngine engine(threads);
    const std::vector<ProjectedSet> parallel = ProjectAll(sub, items, &engine);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_TRUE(ViewOf(parallel[i]) == ViewOf(sequential[i]))
          << "threads=" << threads;
    }
  }
}

// End-to-end solver determinism (formerly spot-checked here for Assadi
// and threshold-greedy) now lives in the cross-algorithm conformance
// matrix: tests/integration/solver_matrix_test.cc runs *every* solver
// across {memory, file, mmap} sources x {none, 1, 2, 8} threads.

}  // namespace
}  // namespace streamsc
