#include "stream/engine_context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "instance/generators.h"
#include "stream/set_stream.h"
#include "util/random.h"

namespace streamsc {
namespace {

// A stream that serves valid items but forbids buffering — the shape of
// FileSetStream, without needing a file on disk.
class UnbufferableStream : public VectorSetStream {
 public:
  using VectorSetStream::VectorSetStream;
  bool ItemsRemainValid() const override { return false; }
};

SetSystem SmallSystem(std::uint64_t seed = 1) {
  Rng rng(seed);
  return UniformRandomInstance(300, 40, 24, rng);
}

// --- Engine-misuse death tests. ----------------------------------------

TEST(EngineContextDeathTest, MakeEngineRejectsThreadCountZero) {
  EXPECT_DEATH(MakeEngine(0), "thread count 0");
}

TEST(EngineContextDeathTest, RequireShardedRejectsNullEngine) {
  const SetSystem system = SmallSystem();
  VectorSetStream stream(system);
  EXPECT_DEATH(RequireSharded(stream, nullptr), "null engine");
}

TEST(EngineContextDeathTest, RequireShardedRejectsUnbufferableStream) {
  const SetSystem system = SmallSystem();
  UnbufferableStream stream(system);
  // A 1-thread engine spawns no workers, keeping the death-test fork
  // single-threaded.
  ParallelPassEngine engine(1);
  EXPECT_DEATH(RequireSharded(stream, &engine), "cannot buffer a pass");
}

TEST(EngineContextDeathTest, DrainPassRejectsUnbufferableStream) {
  const SetSystem system = SmallSystem();
  UnbufferableStream stream(system);
  EXPECT_DEATH(DrainPass(stream), "invalidates items");
}

// --- MakeEngine semantics. ---------------------------------------------

TEST(EngineContextTest, MakeEngineOneThreadIsTheSequentialPath) {
  EXPECT_EQ(MakeEngine(1), nullptr);
  const std::unique_ptr<ParallelPassEngine> engine = MakeEngine(3);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->num_threads(), 3u);
}

TEST(EngineContextTest, RequireShardedAcceptsShardedPair) {
  const SetSystem system = SmallSystem();
  VectorSetStream stream(system);
  ParallelPassEngine engine(2);
  RequireSharded(stream, &engine);  // must not die
}

// --- Sharding decision. ------------------------------------------------

TEST(EngineContextTest, ShardsOnlyWithEngineAndBufferableStream) {
  const SetSystem system = SmallSystem();
  VectorSetStream memory(system);
  UnbufferableStream unbufferable(system);
  ParallelPassEngine engine(2);

  EXPECT_FALSE(EngineContext(memory, nullptr).sharded());
  EXPECT_TRUE(EngineContext(memory, &engine).sharded());
  EXPECT_FALSE(EngineContext(unbufferable, &engine).sharded());
  EXPECT_FALSE(EngineContext(unbufferable, nullptr).sharded());
}

// --- Determinism of the primitives across thread counts. ---------------

TEST(EngineContextTest, ThresholdPassMatchesSequentialForAnyThreadCount) {
  const SetSystem system = SmallSystem(3);

  VectorSetStream baseline_stream(system);
  EngineContext baseline_ctx(baseline_stream, nullptr);
  DynamicBitset baseline_uncovered = DynamicBitset::Full(300);
  std::vector<SetId> baseline_taken;
  baseline_ctx.ThresholdPass(10.0, baseline_uncovered, [&](SetId id) {
    baseline_taken.push_back(id);
  });

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelPassEngine engine(threads);
    VectorSetStream stream(system);
    EngineContext ctx(stream, &engine);
    DynamicBitset uncovered = DynamicBitset::Full(300);
    std::vector<SetId> taken;
    ctx.ThresholdPass(10.0, uncovered,
                      [&](SetId id) { taken.push_back(id); });
    EXPECT_EQ(taken, baseline_taken);
    EXPECT_EQ(uncovered, baseline_uncovered);
    EXPECT_EQ(ctx.stats().sets_taken, baseline_ctx.stats().sets_taken);
    EXPECT_EQ(ctx.stats().elements_covered,
              baseline_ctx.stats().elements_covered);
  }
}

TEST(EngineContextTest, GainScanPassBoundsAreUpperBoundsVisitedInOrder) {
  const SetSystem system = SmallSystem(4);
  ParallelPassEngine engine(4);
  VectorSetStream stream(system);
  EngineContext ctx(stream, &engine);
  ASSERT_TRUE(ctx.sharded());

  DynamicBitset uncovered = DynamicBitset::Full(300);
  SetId last_id = 0;
  bool first = true;
  ctx.GainScanPass(uncovered, [&](const StreamItem& item, Count bound,
                                  bool bound_is_exact) {
    // Stream order: ids strictly increase for an adversarial-order
    // VectorSetStream.
    if (!first) {
      EXPECT_GT(item.id, last_id);
    }
    first = false;
    last_id = item.id;
    const Count exact = item.set.CountAnd(uncovered);
    EXPECT_GE(bound, exact);
    if (bound_is_exact) {
      EXPECT_EQ(bound, exact);
    }
    // Emulate a taker to make later bounds stale.
    item.set.AndNotInto(uncovered);
  });
  EXPECT_FALSE(first) << "visit never called";
}

TEST(EngineContextTest, TransformPassCommitsInStreamOrder) {
  const SetSystem system = SmallSystem(5);

  const auto run = [&](ParallelPassEngine* engine) {
    VectorSetStream stream(system);
    EngineContext ctx(stream, engine);
    std::vector<std::pair<SetId, Count>> committed;
    ctx.TransformPass<Count>(
        [](const StreamItem& item) { return item.set.CountSet(); },
        [&](const StreamItem& item, Count size) {
          committed.emplace_back(item.id, size);
        });
    return committed;
  };

  const auto baseline = run(nullptr);
  ASSERT_EQ(baseline.size(), system.num_sets());
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelPassEngine engine(threads);
    EXPECT_EQ(run(&engine), baseline);
  }
}

TEST(EngineContextTest, IndependentScanPassLanesMatchSequential) {
  const SetSystem system = SmallSystem(6);
  constexpr std::size_t kLanes = 7;

  const auto run = [&](ParallelPassEngine* engine) {
    VectorSetStream stream(system);
    EngineContext ctx(stream, engine);
    // Lane l accumulates an order-sensitive checksum of the items it saw.
    std::vector<std::uint64_t> checksum(kLanes, 0);
    ctx.IndependentScanPass(kLanes, [&](std::size_t lane,
                                        const StreamItem& item) {
      checksum[lane] = checksum[lane] * 1000003 + item.id + lane;
    });
    return checksum;
  };

  const auto baseline = run(nullptr);
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelPassEngine engine(threads);
    EXPECT_EQ(run(&engine), baseline);
  }
}

TEST(EngineContextTest, SubtractPassClearsExactlyTheChosenSets) {
  const SetSystem system = SmallSystem(7);
  VectorSetStream stream(system);
  EngineContext ctx(stream, nullptr);

  const std::vector<SetId> chosen = {5, 2, 17};  // unsorted on purpose
  DynamicBitset uncovered = DynamicBitset::Full(300);
  ctx.SubtractPass(chosen, uncovered);

  DynamicBitset expected = DynamicBitset::Full(300);
  for (SetId id : chosen) system.set(id).AndNotInto(expected);
  EXPECT_EQ(uncovered, expected);
  EXPECT_EQ(ctx.stats().passes, 1u);
  EXPECT_EQ(ctx.stats().elements_covered,
            300u - expected.CountSet());
  // An empty subtraction costs no pass.
  ctx.SubtractPass({}, uncovered);
  EXPECT_EQ(ctx.stats().passes, 1u);
}

TEST(EngineContextTest, UnionPassCollectsExactlyTheChosenSets) {
  const SetSystem system = SmallSystem(8);
  VectorSetStream stream(system);
  EngineContext ctx(stream, nullptr);

  const std::vector<SetId> chosen = {9, 1};
  DynamicBitset covered(300);
  ctx.UnionPass(chosen, covered);

  DynamicBitset expected(300);
  for (SetId id : chosen) system.set(id).OrInto(expected);
  EXPECT_EQ(covered, expected);
}

TEST(EngineContextTest, CoverResiduePassTakesUntilEmpty) {
  Rng rng(9);
  const SetSystem system = PlantedCoverInstance(128, 12, 4, rng);
  VectorSetStream stream(system);
  EngineContext ctx(stream, nullptr);

  DynamicBitset uncovered = DynamicBitset::Full(128);
  std::vector<SetId> taken;
  ctx.CoverResiduePass(uncovered,
                       [&](SetId id) { taken.push_back(id); });
  EXPECT_TRUE(uncovered.None());
  EXPECT_FALSE(taken.empty());
  EXPECT_EQ(ctx.stats().sets_taken, taken.size());
  EXPECT_EQ(ctx.stats().elements_covered, 128u);
}

TEST(EngineContextTest, ParallelForRunsWithoutStreamBuffering) {
  const SetSystem system = SmallSystem(10);
  UnbufferableStream stream(system);  // cannot buffer a pass...
  ParallelPassEngine engine(4);
  EngineContext ctx(stream, &engine);
  ASSERT_FALSE(ctx.sharded());

  // ...but index-parallel work on solver-owned state still shards.
  std::vector<int> hits(1000, 0);
  ctx.ParallelFor(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(EngineContextTest, CountersAreThreadCountInvariant) {
  const SetSystem system = SmallSystem(11);

  const auto run = [&](ParallelPassEngine* engine) {
    VectorSetStream stream(system);
    EngineContext ctx(stream, engine);
    DynamicBitset uncovered = DynamicBitset::Full(300);
    ctx.ThresholdPass(8.0, uncovered, [](SetId) {});
    ctx.ThresholdPass(1.0, uncovered, [](SetId) {});
    return ctx.stats();
  };

  const EnginePassStats baseline = run(nullptr);
  EXPECT_EQ(baseline.passes, 2u);
  EXPECT_EQ(baseline.items_scanned, 2 * system.num_sets());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ParallelPassEngine engine(threads);
    const EnginePassStats stats = run(&engine);
    EXPECT_EQ(stats.passes, baseline.passes);
    EXPECT_EQ(stats.items_scanned, baseline.items_scanned);
    EXPECT_EQ(stats.sets_taken, baseline.sets_taken);
    EXPECT_EQ(stats.elements_covered, baseline.elements_covered);
  }
}

}  // namespace
}  // namespace streamsc
