#include "info/info_cost.h"

#include <gtest/gtest.h>

namespace streamsc {
namespace {

// A protocol that reveals nothing: Bob hears a constant.
class SilentDisjProtocol : public DisjProtocol {
 public:
  std::string name() const override { return "silent"; }
  bool Run(const DisjInstance& instance, Rng& shared_rng,
           Transcript* transcript) override {
    (void)instance;
    transcript->Append(Player::kAlice, 1, 0);
    // Guess via public coin only.
    return shared_rng.Bernoulli(0.5);
  }
};

TEST(InfoCostTest, SilentProtocolHasZeroInformationCost) {
  DisjDistribution dist(6);
  SilentDisjProtocol protocol;
  Rng rng(1);
  const InfoCostEstimate estimate = EstimateDisjInfoCost(
      protocol, dist, DisjConditioning::kMixed, 5000, rng);
  EXPECT_NEAR(estimate.icost, 0.0, 0.02);
  EXPECT_EQ(estimate.samples, 5000u);
}

TEST(InfoCostTest, TrivialProtocolRevealsAliceInput) {
  // Alice sends A: I(Π : A | B) ≈ H(A | B) > 0, I(Π : B | A) ≈ 0.
  const std::size_t t = 5;
  DisjDistribution dist(t);
  TrivialDisjProtocol protocol;
  Rng rng(2);
  const InfoCostEstimate estimate = EstimateDisjInfoCost(
      protocol, dist, DisjConditioning::kYesOnly, 60000, rng);
  EXPECT_GT(estimate.i_pi_x_given_y, 1.0);
  // Bob's answer bit is a function of (A, B); given A it still carries a
  // little about B — but far less than Alice's side.
  EXPECT_LT(estimate.i_pi_y_given_x, estimate.i_pi_x_given_y);
  EXPECT_GT(estimate.icost, 1.0);
}

TEST(InfoCostTest, InfoCostGrowsWithUniverse) {
  // The Ω(t) scaling of Prop 2.5, upper-bound side: the trivial protocol's
  // cost grows with t.
  TrivialDisjProtocol protocol;
  Rng rng(3);
  DisjDistribution small(3), large(7);
  const InfoCostEstimate e_small = EstimateDisjInfoCost(
      protocol, small, DisjConditioning::kYesOnly, 60000, rng);
  const InfoCostEstimate e_large = EstimateDisjInfoCost(
      protocol, large, DisjConditioning::kYesOnly, 60000, rng);
  EXPECT_GT(e_large.icost, e_small.icost + 0.5);
}

TEST(InfoCostTest, SampledProtocolInterpolates) {
  // Communication budget below t ⇒ information below the trivial cost.
  const std::size_t t = 7;
  DisjDistribution dist(t);
  Rng rng(4);
  TrivialDisjProtocol trivial;
  SampledDisjProtocol sampled(2);
  const InfoCostEstimate e_trivial = EstimateDisjInfoCost(
      trivial, dist, DisjConditioning::kYesOnly, 50000, rng);
  const InfoCostEstimate e_sampled = EstimateDisjInfoCost(
      sampled, dist, DisjConditioning::kYesOnly, 50000, rng);
  EXPECT_LT(e_sampled.icost, e_trivial.icost);
  EXPECT_GT(e_sampled.icost, 0.0);
}

TEST(InfoCostTest, YesAndNoConditionalsBothMeasurable) {
  // The Lemma 3.5 theme: the information cost on D^N is comparable to the
  // cost on D^Y for a protocol that actually solves the problem.
  const std::size_t t = 6;
  DisjDistribution dist(t);
  TrivialDisjProtocol protocol;
  Rng rng(5);
  const InfoCostEstimate yes = EstimateDisjInfoCost(
      protocol, dist, DisjConditioning::kYesOnly, 50000, rng);
  const InfoCostEstimate no = EstimateDisjInfoCost(
      protocol, dist, DisjConditioning::kNoOnly, 50000, rng);
  EXPECT_GT(yes.icost, 1.0);
  EXPECT_GT(no.icost, 1.0);
  EXPECT_NEAR(yes.icost, no.icost, 1.5);
}

TEST(InfoCostTest, GhdTrivialProtocolRevealsAliceSide) {
  GhdDistribution dist(8, 4, 4);
  TrivialGhdProtocol protocol(dist);
  Rng rng(6);
  const InfoCostEstimate estimate = EstimateGhdInfoCost(
      protocol, dist, GhdConditioning::kMixed, 50000, rng);
  EXPECT_GT(estimate.i_pi_x_given_y, 0.5);
  EXPECT_GT(estimate.icost, 0.5);
}

}  // namespace
}  // namespace streamsc
