#include "info/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace streamsc {
namespace {

TEST(EntropyTest, EmptyCountsZero) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}), 0.0);
}

TEST(EntropyTest, DeterministicVariableHasZeroEntropy) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({{7, 100}}), 0.0);
  EXPECT_DOUBLE_EQ(EstimateEntropy({5, 5, 5, 5}), 0.0);
}

TEST(EntropyTest, FairCoinIsOneBit) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({{0, 50}, {1, 50}}), 1.0);
}

TEST(EntropyTest, UniformOverEightValuesIsThreeBits) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (std::uint64_t v = 0; v < 8; ++v) counts[v] = 10;
  EXPECT_NEAR(EntropyFromCounts(counts), 3.0, 1e-12);
}

TEST(EntropyTest, BiasedCoin) {
  // H(0.25) = 0.25·log2(4) + 0.75·log2(4/3).
  const double expected = 0.25 * 2 + 0.75 * std::log2(4.0 / 3.0);
  EXPECT_NEAR(EntropyFromCounts({{0, 25}, {1, 75}}), expected, 1e-12);
}

TEST(MutualInformationTest, IndependentVariablesNearZero) {
  Rng rng(1);
  std::vector<std::uint64_t> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.UniformInt(4));
    ys.push_back(rng.UniformInt(4));
  }
  EXPECT_NEAR(EstimateMutualInformation(xs, ys), 0.0, 0.01);
}

TEST(MutualInformationTest, IdenticalVariablesGiveFullEntropy) {
  Rng rng(2);
  std::vector<std::uint64_t> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.UniformInt(4));
  EXPECT_NEAR(EstimateMutualInformation(xs, xs), 2.0, 0.01);
}

TEST(MutualInformationTest, FunctionOfXCapsAtFunctionEntropy) {
  Rng rng(3);
  std::vector<std::uint64_t> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t x = rng.UniformInt(8);
    xs.push_back(x);
    ys.push_back(x % 2);  // one bit of x
  }
  EXPECT_NEAR(EstimateMutualInformation(xs, ys), 1.0, 0.01);
}

TEST(MutualInformationTest, NeverNegative) {
  EXPECT_GE(EstimateMutualInformation({1, 2, 3}, {4, 5, 6}), 0.0);
  EXPECT_GE(EstimateMutualInformation({}, {}), 0.0);
}

TEST(ConditionalMiTest, ConditioningRemovesSharedDependence) {
  // X = Z, Y = Z: I(X:Y) = H(Z) but I(X:Y | Z) = 0.
  Rng rng(4);
  std::vector<Triple> triples;
  std::vector<std::uint64_t> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t z = rng.UniformInt(4);
    triples.push_back(Triple{z, z, z});
    xs.push_back(z);
    ys.push_back(z);
  }
  EXPECT_NEAR(EstimateMutualInformation(xs, ys), 2.0, 0.01);
  EXPECT_NEAR(EstimateConditionalMutualInformation(triples), 0.0, 0.01);
}

TEST(ConditionalMiTest, XorRevealsOnlyUnderConditioning) {
  // X, W fair independent bits; Y = X ⊕ W; Z = W.
  // I(X : Y) = 0 but I(X : Y | Z) = 1.
  Rng rng(5);
  std::vector<Triple> triples;
  std::vector<std::uint64_t> xs, ys;
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t x = rng.UniformInt(2);
    const std::uint64_t w = rng.UniformInt(2);
    triples.push_back(Triple{x, x ^ w, w});
    xs.push_back(x);
    ys.push_back(x ^ w);
  }
  EXPECT_NEAR(EstimateMutualInformation(xs, ys), 0.0, 0.01);
  EXPECT_NEAR(EstimateConditionalMutualInformation(triples), 1.0, 0.01);
}

TEST(ConditionalMiTest, EmptySamples) {
  EXPECT_DOUBLE_EQ(EstimateConditionalMutualInformation({}), 0.0);
}

}  // namespace
}  // namespace streamsc
