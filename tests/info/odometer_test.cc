#include "info/odometer.h"

#include <gtest/gtest.h>

#include "comm/reductions.h"

namespace streamsc {
namespace {

TEST(OdometerProfileTest, TrivialProtocolProfileIsMonotone) {
  // Cumulative information can only grow with the prefix length.
  DisjDistribution dist(6);
  TrivialDisjProtocol protocol;
  Rng rng(1);
  const OdometerProfile profile = EstimatePrefixInformation(
      protocol, dist, OdometerConditioning::kMixed, 20000, rng);
  ASSERT_EQ(profile.cumulative_bits.size(), 2u);  // A's vector, B's answer
  EXPECT_LE(profile.cumulative_bits[0],
            profile.cumulative_bits[1] + 0.05);  // MC noise slack
  EXPECT_GT(profile.cumulative_bits[0], 1.0);    // A's vector carries bits
}

TEST(OdometerProfileTest, FirstMessageCarriesAliceInformation) {
  // After Alice's full vector, I(Π : A | B) should be near H(A | B) — for
  // t = 4 under D_Disj that is > 2 bits; B's answer adds little.
  DisjDistribution dist(4);
  TrivialDisjProtocol protocol;
  Rng rng(2);
  const OdometerProfile profile = EstimatePrefixInformation(
      protocol, dist, OdometerConditioning::kMixed, 30000, rng);
  ASSERT_GE(profile.cumulative_bits.size(), 1u);
  EXPECT_GT(profile.cumulative_bits[0], 1.5);
}

TEST(OdometerProfileTest, ConditioningsAgreeOnShape) {
  DisjDistribution dist(5);
  TrivialDisjProtocol protocol;
  Rng rng(3);
  const OdometerProfile yes = EstimatePrefixInformation(
      protocol, dist, OdometerConditioning::kYesOnly, 20000, rng);
  const OdometerProfile no = EstimatePrefixInformation(
      protocol, dist, OdometerConditioning::kNoOnly, 20000, rng);
  ASSERT_EQ(yes.cumulative_bits.size(), no.cumulative_bits.size());
  // Lemma 3.5's premise: the two costs are within a constant of each
  // other (N/Y ratio Theta(1)).
  EXPECT_GT(no.cumulative_bits.back(), 0.3 * yes.cumulative_bits.back());
  EXPECT_LT(no.cumulative_bits.back(), 3.0 * yes.cumulative_bits.back());
}

TEST(BudgetedOdometerTest, GenerousBudgetPreservesAnswers) {
  DisjDistribution dist(6);
  TrivialDisjProtocol inner;
  Rng profile_rng(4);
  OdometerProfile profile = EstimatePrefixInformation(
      inner, dist, OdometerConditioning::kMixed, 20000, profile_rng);
  BudgetedOdometerProtocol wrapped(&inner, profile, /*budget_bits=*/1e9);

  Rng rng(5);
  const ProtocolEvaluation eval = EvaluateDisjProtocol(wrapped, dist, 300, rng);
  EXPECT_EQ(eval.errors, 0u);
  EXPECT_EQ(wrapped.truncations(), 0u);
}

TEST(BudgetedOdometerTest, ZeroBudgetTruncatesEverythingToNo) {
  DisjDistribution dist(6);
  TrivialDisjProtocol inner;
  Rng profile_rng(6);
  OdometerProfile profile = EstimatePrefixInformation(
      inner, dist, OdometerConditioning::kMixed, 10000, profile_rng);
  BudgetedOdometerProtocol wrapped(&inner, profile, /*budget_bits=*/0.0);

  Rng rng(7);
  const ProtocolEvaluation eval = EvaluateDisjProtocol(wrapped, dist, 200, rng);
  EXPECT_EQ(wrapped.truncations(), 200u);
  // All answers are "No": error rate = fraction of Yes instances (~1/2).
  EXPECT_NEAR(eval.error_rate, 0.5, 0.15);
}

TEST(BudgetedOdometerTest, IntermediateBudgetTruncatesTheTail) {
  // Budget between the first and second prefix information levels: the
  // answer message is cut, the information-heavy first message admitted.
  DisjDistribution dist(5);
  TrivialDisjProtocol inner;
  Rng profile_rng(8);
  OdometerProfile profile = EstimatePrefixInformation(
      inner, dist, OdometerConditioning::kMixed, 20000, profile_rng);
  ASSERT_EQ(profile.cumulative_bits.size(), 2u);
  const double mid = (profile.cumulative_bits[0] +
                      profile.cumulative_bits[1]) / 2.0;
  // Only meaningful if the answer message adds measurable information.
  if (profile.cumulative_bits[1] - profile.cumulative_bits[0] < 0.05) {
    GTEST_SKIP() << "answer message adds no measurable information here";
  }
  BudgetedOdometerProtocol wrapped(&inner, profile, mid);
  Rng rng(9);
  Transcript transcript;
  DisjInstance instance = dist.Sample(rng);
  Rng shared(10);
  wrapped.Run(instance, shared, &transcript);
  EXPECT_EQ(transcript.NumMessages(), 2u);  // prefix + forced answer
  EXPECT_EQ(wrapped.truncations(), 1u);
}

TEST(BudgetedOdometerTest, NameWrapsInner) {
  DisjDistribution dist(4);
  TrivialDisjProtocol inner;
  BudgetedOdometerProtocol wrapped(&inner, OdometerProfile{}, 1.0);
  EXPECT_NE(wrapped.name().find("odometer["), std::string::npos);
}

}  // namespace
}  // namespace streamsc
