#include "core/assadi_set_cover.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "instance/hard_set_cover.h"
#include "offline/verifier.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

AssadiConfig DefaultConfig(std::size_t alpha = 2) {
  AssadiConfig config;
  config.alpha = alpha;
  config.epsilon = 0.5;
  config.seed = 7;
  return config;
}

TEST(AssadiSetCoverTest, CoversPlantedInstance) {
  Rng rng(1);
  const SetSystem system = PlantedCoverInstance(400, 40, 4, rng);
  VectorSetStream stream(system);
  AssadiSetCover algorithm(DefaultConfig());
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(AssadiSetCoverTest, ApproximationWithinAlphaPlusEps) {
  // Theorem 2's guarantee against the *known* planted optimum. The driver
  // loses an extra (1+ε) from guessing, so we allow (α+ε)(1+ε).
  Rng rng(2);
  const std::size_t opt = 5;
  for (int trial = 0; trial < 5; ++trial) {
    const SetSystem system = PlantedCoverInstance(500, 50, opt, rng);
    VectorSetStream stream(system);
    AssadiSetCover algorithm(DefaultConfig(2));
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible);
    const double bound = (2.0 + 0.5) * (1.0 + 0.5) * opt;
    EXPECT_LE(static_cast<double>(result.solution.size()), bound);
  }
}

TEST(AssadiSetCoverTest, KnownOptSkipsGuessing) {
  Rng rng(3);
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng);
  VectorSetStream stream(system);
  AssadiConfig config = DefaultConfig();
  config.known_opt = 3;
  AssadiSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  // Single guess => exactly the paper's pass budget (2α+1), plus at most
  // one cleanup pass.
  EXPECT_LE(result.stats.passes, 2 * 2 + 1 + 1);
  EXPECT_LE(static_cast<double>(result.solution.size()), (2.0 + 0.5) * 3.0);
}

TEST(AssadiSetCoverTest, SingleGuessPassBudget) {
  Rng rng(4);
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng);
  VectorSetStream stream(system);
  AssadiSetCover algorithm(DefaultConfig(3));
  Rng run_rng(5);
  const AssadiGuessResult result = algorithm.RunWithGuess(stream, 3, run_rng);
  // 1 pruning + per-iteration (store + subtract) + optional cleanup.
  EXPECT_LE(result.passes, 2 * 3 + 1 + 1);
  EXPECT_GE(result.passes, 1u);
}

TEST(AssadiSetCoverTest, GuessBelowOptFailsCleanly) {
  // With õpt = 1 on an opt = 4 instance, the guess must be rejected (the
  // sub-solver proves no size-1 cover of the sample).
  Rng rng(6);
  const SetSystem system = PlantedCoverInstance(300, 20, 4, rng);
  VectorSetStream stream(system);
  AssadiSetCover algorithm(DefaultConfig());
  Rng run_rng(7);
  const AssadiGuessResult result = algorithm.RunWithGuess(stream, 1, run_rng);
  EXPECT_FALSE(result.feasible && result.within_budget);
}

TEST(AssadiSetCoverTest, AlphaOneStoresEverythingAndIsNearExact) {
  // α = 1: ρ = 1/n, so the sampling rate clamps to 1 and one iteration
  // stores the full residual instance — solution within (1+ε)·opt.
  Rng rng(8);
  const std::size_t opt = 4;
  const SetSystem system = PlantedCoverInstance(200, 20, opt, rng);
  VectorSetStream stream(system);
  AssadiConfig config = DefaultConfig(1);
  config.known_opt = opt;
  AssadiSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(static_cast<double>(result.solution.size()),
            (1.0 + config.epsilon) * opt);
}

TEST(AssadiSetCoverTest, SpaceShrinksWithAlpha) {
  // The headline tradeoff: larger α ⇒ smaller peak space (n^{1/α} shape).
  // The paper's constant 16·log m saturates the sampling rate at laptop n,
  // so scale it down uniformly (sampling_boost) to expose the exponent.
  Rng rng(9);
  const SetSystem system = PlantedCoverInstance(16384, 64, 4, rng);
  Bytes previous = 0;
  bool first = true;
  for (std::size_t alpha : {1, 2, 4}) {
    VectorSetStream stream(system);
    AssadiConfig config = DefaultConfig(alpha);
    config.known_opt = 4;
    config.sampling_boost = 1.0 / 16.0;
    AssadiSetCover algorithm(config);
    Rng run_rng(10);
    const AssadiGuessResult result = algorithm.RunWithGuess(stream, 4, run_rng);
    if (!first) {
      EXPECT_LT(result.peak_space_bytes, previous);
    }
    previous = result.peak_space_bytes;
    first = false;
  }
}

TEST(AssadiSetCoverTest, SpaceBelowDenseInputSize) {
  // Sublinearity: peak space far below the m·n bits of the dense input.
  Rng rng(11);
  const std::size_t n = 16384, m = 128;
  const SetSystem system = PlantedCoverInstance(n, m, 4, rng);
  VectorSetStream stream(system);
  AssadiConfig config = DefaultConfig(4);
  config.known_opt = 4;
  AssadiSetCover algorithm(config);
  Rng run_rng(12);
  const AssadiGuessResult result = algorithm.RunWithGuess(stream, 4, run_rng);
  const Bytes dense_input = static_cast<Bytes>(m) * n / 8;
  EXPECT_LT(result.peak_space_bytes, dense_input / 2);
}

TEST(AssadiSetCoverTest, FeasibleOnHardDistributionThetaOne) {
  // On a planted D_SC instance the algorithm must find *some* cover
  // within its budget (value estimation is what the lower bound bounds).
  HardSetCoverParams params;
  params.n = 512;
  params.m = 10;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  Rng rng(13);
  const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
  const SetSystem system = inst.ToSetSystem();
  VectorSetStream stream(system);
  AssadiSetCover algorithm(DefaultConfig());
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(AssadiSetCoverTest, RandomOrderStreamWorks) {
  Rng rng(14);
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng);
  Rng order_rng(15);
  VectorSetStream stream(system, StreamOrder::kRandomOnce, &order_rng);
  AssadiSetCover algorithm(DefaultConfig());
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(AssadiSetCoverTest, DeterministicGivenSeed) {
  Rng rng(16);
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng);
  ArenaVector<SetId> first;
  for (int run = 0; run < 2; ++run) {
    VectorSetStream stream(system);
    AssadiSetCover algorithm(DefaultConfig());
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible);
    if (run == 0) {
      first = result.solution.chosen;
    } else {
      EXPECT_EQ(result.solution.chosen, first);
    }
  }
}

TEST(AssadiSetCoverTest, NameMentionsParameters) {
  AssadiSetCover algorithm(DefaultConfig(3));
  EXPECT_NE(algorithm.name().find("alpha=3"), std::string::npos);
}

TEST(AssadiSetCoverTest, SamplingBoostIncreasesSpace) {
  Rng rng(17);
  const SetSystem system = PlantedCoverInstance(2048, 48, 4, rng);
  Bytes space_low = 0, space_high = 0;
  for (const double boost : {0.25, 4.0}) {
    VectorSetStream stream(system);
    AssadiConfig config = DefaultConfig(3);
    config.sampling_boost = boost;
    AssadiSetCover algorithm(config);
    Rng run_rng(18);
    const AssadiGuessResult result = algorithm.RunWithGuess(stream, 4, run_rng);
    (boost < 1.0 ? space_low : space_high) = result.peak_space_bytes;
  }
  EXPECT_LT(space_low, space_high);
}

// Config validation is CHECK-armed in every build mode (a release build
// used to compile the old asserts out).
TEST(AssadiDeathTest, RejectsDegenerateConfig) {
  AssadiConfig zero_alpha;
  zero_alpha.alpha = 0;
  EXPECT_DEATH(AssadiSetCover{zero_alpha}, "alpha");
  AssadiConfig zero_eps;
  zero_eps.epsilon = 0.0;
  EXPECT_DEATH(AssadiSetCover{zero_eps}, "epsilon");
}

}  // namespace
}  // namespace streamsc
