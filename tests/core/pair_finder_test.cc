#include "core/pair_finder.h"

#include <gtest/gtest.h>

#include "instance/hard_set_cover.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

TEST(PairFinderTest, FindsObviousPair) {
  SetSystem system(8);
  system.AddSetFromIndices({0, 1, 2, 3});
  system.AddSetFromIndices({4, 5, 6, 7});
  system.AddSetFromIndices({0, 4});
  VectorSetStream stream(system);
  ExactPairFinder finder(PairFinderConfig{2, 1000});
  const PairFinderResult result = finder.Run(stream);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
  EXPECT_EQ(result.passes, 2u);
}

TEST(PairFinderTest, SingleSetCoverReported) {
  SetSystem system(8);
  system.AddSetFromIndices({0, 1});
  system.AddSet(DynamicBitset::Full(8));
  VectorSetStream stream(system);
  ExactPairFinder finder(PairFinderConfig{2, 1000});
  const PairFinderResult result = finder.Run(stream);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.solution.size(), 1u);
  EXPECT_EQ(result.solution.chosen[0], 1u);
}

TEST(PairFinderTest, ReportsAbsenceWhenNoPairCovers) {
  SetSystem system(9);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 4, 5});
  system.AddSetFromIndices({6, 7, 8});
  VectorSetStream stream(system);
  ExactPairFinder finder(PairFinderConfig{3, 1000});
  const PairFinderResult result = finder.Run(stream);
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.solution.empty());
}

TEST(PairFinderTest, FindsPlantedPairOnHardDistribution) {
  HardSetCoverParams params;
  params.n = 512;
  params.m = 12;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
    const SetSystem system = inst.ToSetSystem();
    VectorSetStream stream(system);
    ExactPairFinder finder(PairFinderConfig{4, 100000});
    const PairFinderResult result = finder.Run(stream);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
  }
}

TEST(PairFinderTest, RejectsThetaZeroInstances) {
  HardSetCoverParams params;
  params.n = 512;
  params.m = 10;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  Rng rng(2);
  const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
  const SetSystem system = inst.ToSetSystem();
  VectorSetStream stream(system);
  ExactPairFinder finder(PairFinderConfig{4, 100000});
  const PairFinderResult result = finder.Run(stream);
  EXPECT_FALSE(result.found);
}

TEST(PairFinderTest, MorePassesLessSpace) {
  // The linear n/p tradeoff (Result 1, footnote 1): projections per pass
  // shrink proportionally to 1/p.
  HardSetCoverParams params;
  params.n = 2048;
  params.m = 16;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  Rng rng(3);
  const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
  const SetSystem system = inst.ToSetSystem();
  Bytes previous = 0;
  bool first = true;
  for (const std::size_t p : {1, 2, 4, 8}) {
    VectorSetStream stream(system);
    ExactPairFinder finder(PairFinderConfig{p, 1000000});
    const PairFinderResult result = finder.Run(stream);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.passes, p);
    if (!first) {
      EXPECT_LT(result.peak_space_bytes, previous);
    }
    previous = result.peak_space_bytes;
    first = false;
  }
}

TEST(PairFinderTest, PassCountEqualsConfig) {
  SetSystem system(16);
  system.AddSet(DynamicBitset::Full(16));
  VectorSetStream stream(system);
  ExactPairFinder finder(PairFinderConfig{5, 100});
  const PairFinderResult result = finder.Run(stream);
  EXPECT_EQ(result.passes, 5u);
  EXPECT_TRUE(result.found);
}

TEST(PairFinderTest, CandidateCapAborts) {
  // Everything covers everything: m²/2 candidates exceed a tiny cap.
  SetSystem system(4);
  for (int i = 0; i < 10; ++i) system.AddSet(DynamicBitset::Full(4));
  VectorSetStream stream(system);
  ExactPairFinder finder(PairFinderConfig{2, 3});
  const PairFinderResult result = finder.Run(stream);
  EXPECT_FALSE(result.found);  // aborted, reported as not found
}

TEST(PairFinderDeathTest, RejectsZeroPasses) {
  PairFinderConfig config;
  config.passes = 0;
  EXPECT_DEATH(ExactPairFinder{config}, "at least one pass");
}

}  // namespace
}  // namespace streamsc
