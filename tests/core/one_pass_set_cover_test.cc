#include "core/one_pass_set_cover.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

TEST(OnePassSetCoverTest, SinglePassOnly) {
  Rng rng(1);
  const SetSystem system = PlantedCoverInstance(200, 20, 4, rng);
  VectorSetStream stream(system);
  OnePassSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  EXPECT_EQ(result.stats.passes, 1u);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(OnePassSetCoverTest, TakeAnythingIsAlwaysFeasible) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const SetSystem system = UniformRandomInstance(100, 15, 20, rng);
    VectorSetStream stream(system);
    OnePassSetCover algorithm;
    const SetCoverRunResult result = algorithm.Run(stream);
    EXPECT_TRUE(result.feasible);
  }
}

TEST(OnePassSetCoverTest, AdversarialOrderDegradesApproximation) {
  // Ascending set sizes: greedy-take-anything picks many small sets first.
  SetSystem system(64);
  for (ElementId e = 0; e < 32; ++e) {
    system.AddSetFromIndices({e});  // 32 singletons first
  }
  system.AddSet(DynamicBitset::Full(64));  // the one-set optimum arrives last
  VectorSetStream stream(system);
  OnePassSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.solution.size(), 32u);  // ratio 33 vs opt 1
}

TEST(OnePassSetCoverTest, ThresholdVariantSkipsSmallSets) {
  SetSystem system(64);
  for (ElementId e = 0; e < 32; ++e) {
    system.AddSetFromIndices({e});
  }
  system.AddSet(DynamicBitset::Full(64));
  VectorSetStream stream(system);
  OnePassSetCover algorithm(OnePassConfig{0.25});
  const SetCoverRunResult result = algorithm.Run(stream);
  // Singletons (gain 1 < 0.25·64) are skipped; the full set is taken.
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.solution.size(), 1u);
}

TEST(OnePassSetCoverTest, ThresholdVariantCanBeInfeasible) {
  SetSystem system(10);
  for (ElementId e = 0; e < 10; ++e) {
    system.AddSetFromIndices({e});
  }
  VectorSetStream stream(system);
  OnePassSetCover algorithm(OnePassConfig{0.5});  // needs gain >= 5
  const SetCoverRunResult result = algorithm.Run(stream);
  EXPECT_FALSE(result.feasible);
}

TEST(OnePassSetCoverTest, SpaceIsUncoveredBitsetPlusSolution) {
  Rng rng(3);
  const std::size_t n = 4096;
  const SetSystem system = PlantedCoverInstance(n, 64, 4, rng);
  VectorSetStream stream(system);
  OnePassSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  // Peak is close to n bits (the U bitset); far from m·n.
  EXPECT_LE(result.stats.peak_space_bytes, n / 8 + 64 * sizeof(SetId) + 64);
}

TEST(OnePassDeathTest, RejectsGainFractionOutsideUnitInterval) {
  OnePassConfig negative;
  negative.min_gain_fraction = -0.25;
  EXPECT_DEATH(OnePassSetCover{negative}, "min_gain_fraction");
  OnePassConfig above_one;
  above_one.min_gain_fraction = 1.5;  // no gain can ever satisfy it
  EXPECT_DEATH(OnePassSetCover{above_one}, "min_gain_fraction");
}

}  // namespace
}  // namespace streamsc
