#include "core/sampling.h"

#include <gtest/gtest.h>

#include <limits>

#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "util/math.h"
#include "util/sparse_set.h"

namespace streamsc {
namespace {

TEST(SubUniverseTest, ProjectsAndLifts) {
  DynamicBitset sampled(10);
  sampled.Set(2);
  sampled.Set(5);
  sampled.Set(9);
  SubUniverse sub(sampled);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.full_size(), 10u);
  EXPECT_EQ(sub.ToFull(0), 2u);
  EXPECT_EQ(sub.ToFull(2), 9u);

  DynamicBitset full(10);
  full.Set(2);
  full.Set(9);
  full.Set(3);  // not sampled; must vanish
  const DynamicBitset proj = sub.Project(full);
  EXPECT_EQ(proj.CountSet(), 2u);
  EXPECT_TRUE(proj.Test(0));
  EXPECT_FALSE(proj.Test(1));
  EXPECT_TRUE(proj.Test(2));

  const DynamicBitset lifted = sub.Lift(proj);
  EXPECT_TRUE(lifted.Test(2));
  EXPECT_TRUE(lifted.Test(9));
  EXPECT_EQ(lifted.CountSet(), 2u);
}

TEST(SubUniverseTest, EmptySample) {
  SubUniverse sub(DynamicBitset(10));
  EXPECT_EQ(sub.size(), 0u);
  EXPECT_TRUE(sub.Project(DynamicBitset::Full(10)).None());
}

TEST(SubUniverseTest, FullSampleIsIdentity) {
  SubUniverse sub(DynamicBitset::Full(6));
  DynamicBitset set(6);
  set.Set(1);
  set.Set(4);
  EXPECT_EQ(sub.Project(set), set);
  EXPECT_EQ(sub.Lift(set), set);
}

TEST(SubUniverseTest, ProjectLiftRoundTripOnSampledElements) {
  Rng rng(1);
  const DynamicBitset sampled = rng.BernoulliSubset(200, 0.3);
  SubUniverse sub(sampled);
  const DynamicBitset full = rng.BernoulliSubset(200, 0.5);
  const DynamicBitset round = sub.Lift(sub.Project(full));
  EXPECT_EQ(round, full & sampled);
}

TEST(SubUniverseTest, WordGatherMatchesElementwiseProjection) {
  // The gather-based Project must agree bit-for-bit with the definitional
  // per-element projection, across word-boundary-straddling universes,
  // for both dense and sparse inputs.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    const std::size_t sizes[] = {1, 63, 64, 65, 127, 129, 500, 1000};
    const std::size_t n = sizes[seed % 8];
    const DynamicBitset sampled = rng.BernoulliSubset(n, 0.35);
    const SubUniverse sub(sampled);
    const DynamicBitset dense_set = rng.BernoulliSubset(n, 0.4);
    const SparseSet sparse_set =
        SparseSet::FromBitset(rng.BernoulliSubset(n, 0.02));

    for (const SetView view : {SetView(dense_set), SetView(sparse_set)}) {
      DynamicBitset expected(sub.size());
      for (std::size_t i = 0; i < sub.size(); ++i) {
        if (view.Test(sub.ToFull(i))) expected.Set(i);
      }
      EXPECT_EQ(sub.Project(view), expected) << "n=" << n;
    }
    EXPECT_EQ(sub.Project(dense_set), sub.Project(SetView(dense_set)));
  }
}

TEST(SubUniverseTest, ProjectAdaptiveKeepsSourceRepresentation) {
  // Sparse sources must project straight to a SparseSet (no dense
  // intermediate), dense sources to a DynamicBitset — both with exactly
  // the contents of the definitional projection.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(40 + seed);
    const std::size_t n = 100 + 37 * seed;
    const SubUniverse sub(rng.BernoulliSubset(n, 0.3));
    const DynamicBitset dense_set = rng.BernoulliSubset(n, 0.4);
    const SparseSet sparse_set =
        SparseSet::FromBitset(rng.BernoulliSubset(n, 0.02));

    const ProjectedSet from_dense = sub.ProjectAdaptive(SetView(dense_set));
    EXPECT_TRUE(std::holds_alternative<DynamicBitset>(from_dense));
    const ProjectedSet from_sparse = sub.ProjectAdaptive(SetView(sparse_set));
    EXPECT_TRUE(std::holds_alternative<SparseSet>(from_sparse));
    // Either way the sample-universe shape and contents match Project.
    const DynamicBitset expect_dense = sub.Project(SetView(dense_set));
    const DynamicBitset expect_sparse = sub.Project(SetView(sparse_set));
    EXPECT_TRUE(ViewOf(from_dense) == SetView(expect_dense));
    EXPECT_TRUE(ViewOf(from_sparse) == SetView(expect_sparse));
    EXPECT_EQ(ViewOf(from_sparse).size(), sub.size());
  }
}

TEST(SubUniverseTest, StoreProjectionRoundTripsThroughSetSystem) {
  Rng rng(50);
  const std::size_t n = 300;
  const SubUniverse sub(rng.BernoulliSubset(n, 0.5));
  SetSystem projections(sub.size());
  const SparseSet sparse_set =
      SparseSet::FromBitset(rng.BernoulliSubset(n, 0.01));
  const DynamicBitset dense_set = rng.BernoulliSubset(n, 0.5);
  const SetId sparse_id =
      StoreProjection(projections, sub.ProjectAdaptive(SetView(sparse_set)));
  const SetId dense_id =
      StoreProjection(projections, sub.ProjectAdaptive(SetView(dense_set)));
  EXPECT_TRUE(projections.set(sparse_id) ==
              SetView(sub.Project(SetView(sparse_set))));
  EXPECT_TRUE(projections.set(dense_id) ==
              SetView(sub.Project(SetView(dense_set))));
  // A sparse projection of a sparse set stays sparse in the store.
  EXPECT_TRUE(projections.IsSparse(sparse_id));
}

TEST(SamplingTest, SampleElementsSubsetOfUniverse) {
  Rng rng(2);
  const DynamicBitset universe = rng.BernoulliSubset(500, 0.6);
  const DynamicBitset sample = SampleElements(universe, 0.3, rng);
  EXPECT_TRUE(sample.IsSubsetOf(universe));
}

// Regression: out-of-range rates used to be forwarded unclamped. The
// documented contract: rate >= 1 keeps the whole universe, rate <= 0
// (and NaN) keeps nothing.
TEST(SamplingTest, RateIsClampedToUnitInterval) {
  Rng rng(6);
  const DynamicBitset universe = rng.BernoulliSubset(300, 0.5);
  EXPECT_EQ(SampleElements(universe, 1.0, rng), universe);
  EXPECT_EQ(SampleElements(universe, 17.5, rng), universe);
  EXPECT_TRUE(SampleElements(universe, 0.0, rng).None());
  EXPECT_TRUE(SampleElements(universe, -3.0, rng).None());
  EXPECT_TRUE(
      SampleElements(universe, std::numeric_limits<double>::quiet_NaN(), rng)
          .None());
}

TEST(SamplingTest, LemmaThreeTwelveProperty) {
  // Lemma 3.12: at rate p >= 16 k log(m) / (rho n), any k-cover of the
  // sample covers >= (1 - rho) n elements, w.h.p. Empirical check on a
  // planted instance: find a <= k cover of the sample exactly (the same
  // primitive Algorithm 1 step 3c uses) and verify full-universe coverage.
  const std::size_t n = 2000, m = 24, k = 4;
  const double rho = 0.2;
  Rng rng(3);
  int good = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<SetId> planted;
    const SetSystem system = PlantedCoverInstance(n, m, k, rng, &planted);
    const double rate = ElementSamplingRate(n, m, k, rho, 1.0);
    const DynamicBitset sampled =
        SampleElements(DynamicBitset::Full(n), rate, rng);
    SubUniverse sub(sampled);
    SetSystem projections(sub.size());
    for (std::size_t i = 0; i < system.num_sets(); ++i) {
      projections.AddSet(sub.Project(system.set(i)));
    }
    ExactSetCoverOptions options;
    options.size_limit = k;  // a k-cover exists: the planted blocks
    const ExactSetCoverResult cover = SolveExactSetCover(projections, options);
    ASSERT_TRUE(cover.feasible);
    ASSERT_LE(cover.solution.size(), k);
    const Count covered = system.CoverageOf(cover.solution.chosen);
    if (static_cast<double>(covered) >= (1.0 - rho) * n) ++good;
  }
  EXPECT_GE(good, trials - 2);
}

TEST(SamplingTest, UndersamplingBreaksTheGuarantee) {
  // The converse direction the E2 bench sweeps: far below the Lemma 3.12
  // rate, covers of the sample routinely miss > rho n elements. Uniform
  // sets (0.4·n each) admit many 4-covers of a tiny sample, all covering
  // only ~1-(0.6)^4 ≈ 87% of [n] — far below the (1-ρ) = 98% target.
  // (A planted instance would be wrong here: its only 4-covers are the
  // planted blocks, which the exact solver recovers even from a tiny
  // sample.)
  const std::size_t n = 4000, m = 40, k = 4;
  const double rho = 0.02;
  Rng rng(4);
  int bad = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    const SetSystem system = UniformRandomInstance(n, m, (2 * n) / 5, rng);
    const double rate = ElementSamplingRate(n, m, k, rho, 1.0 / 256.0);
    const DynamicBitset sampled =
        SampleElements(DynamicBitset::Full(n), rate, rng);
    SubUniverse sub(sampled);
    SetSystem projections(sub.size());
    for (std::size_t i = 0; i < system.num_sets(); ++i) {
      projections.AddSet(sub.Project(system.set(i)));
    }
    ExactSetCoverOptions options;
    options.size_limit = k;
    const ExactSetCoverResult cover = SolveExactSetCover(projections, options);
    if (!cover.feasible || cover.solution.size() > k) continue;
    const Count covered = system.CoverageOf(cover.solution.chosen);
    if (static_cast<double>(covered) < (1.0 - rho) * n) ++bad;
  }
  EXPECT_GE(bad, trials / 2);
}

}  // namespace
}  // namespace streamsc
