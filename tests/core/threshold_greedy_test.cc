#include "core/threshold_greedy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "instance/generators.h"
#include "stream/set_stream.h"
#include "util/math.h"

namespace streamsc {
namespace {

TEST(ThresholdGreedyTest, CoversSimpleInstance) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 4});
  system.AddSetFromIndices({5});
  VectorSetStream stream(system);
  ThresholdGreedySetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(ThresholdGreedyTest, PassBudgetIsLogarithmic) {
  Rng rng(1);
  const std::size_t n = 1024;
  const SetSystem system = PlantedCoverInstance(n, 40, 5, rng);
  VectorSetStream stream(system);
  ThresholdGreedySetCover algorithm(ThresholdGreedyConfig{2.0});
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.stats.passes,
            static_cast<std::uint64_t>(std::log2(n)) + 2);
}

TEST(ThresholdGreedyTest, SpaceIndependentOfM) {
  // Õ(n) space: growing m leaves peak space nearly unchanged.
  Rng rng(2);
  const std::size_t n = 2048;
  Bytes space_small = 0, space_large = 0;
  for (const std::size_t m : {32, 512}) {
    const SetSystem system = PlantedCoverInstance(n, m, 4, rng);
    VectorSetStream stream(system);
    ThresholdGreedySetCover algorithm;
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible);
    (m == 32 ? space_small : space_large) = result.stats.peak_space_bytes;
  }
  // Allow slack for the (m-dependent) solution id list.
  EXPECT_LT(static_cast<double>(space_large),
            1.5 * static_cast<double>(space_small));
}

TEST(ThresholdGreedyTest, ApproximationWithinLogFactor) {
  Rng rng(3);
  const std::size_t opt = 6;
  const SetSystem system = PlantedCoverInstance(600, 60, opt, rng);
  VectorSetStream stream(system);
  ThresholdGreedySetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(static_cast<double>(result.solution.size()),
            2.0 * (HarmonicNumber(600) + 1.0) * opt);
}

TEST(ThresholdGreedyTest, LargerBetaFewerPasses) {
  Rng rng(4);
  const SetSystem system = PlantedCoverInstance(1024, 30, 4, rng);
  VectorSetStream stream2(system);
  ThresholdGreedySetCover algo2(ThresholdGreedyConfig{2.0});
  const auto result2 = algo2.Run(stream2);
  VectorSetStream stream4(system);
  ThresholdGreedySetCover algo4(ThresholdGreedyConfig{4.0});
  const auto result4 = algo4.Run(stream4);
  ASSERT_TRUE(result2.feasible);
  ASSERT_TRUE(result4.feasible);
  EXPECT_LT(result4.stats.passes, result2.stats.passes);
}

TEST(ThresholdGreedyTest, StopsEarlyWhenCovered) {
  SetSystem system(64);
  system.AddSet(DynamicBitset::Full(64));
  VectorSetStream stream(system);
  ThresholdGreedySetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.solution.size(), 1u);
  EXPECT_LE(result.stats.passes, 2u);
}

TEST(ThresholdGreedyDeathTest, RejectsNonShrinkingBeta) {
  ThresholdGreedyConfig config;
  config.beta = 1.0;  // threshold would never shrink: infinite passes
  EXPECT_DEATH(ThresholdGreedySetCover{config}, "beta");
}

}  // namespace
}  // namespace streamsc
