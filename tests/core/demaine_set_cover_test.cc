#include "core/demaine_set_cover.h"

#include <gtest/gtest.h>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "offline/verifier.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

TEST(DemaineSetCoverTest, CoversPlantedInstance) {
  Rng rng(1);
  const SetSystem system = PlantedCoverInstance(400, 40, 4, rng);
  VectorSetStream stream(system);
  DemaineConfig config;
  config.alpha = 4;
  DemaineSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(DemaineSetCoverTest, CoversAcrossGenerators) {
  Rng rng(2);
  std::vector<SetSystem> instances;
  instances.push_back(UniformRandomInstance(200, 25, 40, rng));
  instances.push_back(ZipfInstance(250, 30, 1.0, 120, rng));
  instances.push_back(NeedleInstance(150, 20, 3, rng));
  for (std::size_t i = 0; i < instances.size(); ++i) {
    VectorSetStream stream(instances[i]);
    DemaineConfig config;
    config.alpha = 4;
    DemaineSetCover algorithm(config);
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible) << "instance " << i;
    EXPECT_TRUE(VerifyCover(instances[i], result.solution).feasible);
  }
}

TEST(DemaineSetCoverTest, PassBudgetIsLinearInAlpha) {
  // O(alpha) phases x 2 passes + cleanup, per guess; with known_opt there
  // is exactly one guess.
  Rng rng(3);
  const SetSystem system = PlantedCoverInstance(512, 32, 4, rng);
  for (const std::size_t alpha : {2, 4, 8}) {
    VectorSetStream stream(system);
    DemaineConfig config;
    config.alpha = alpha;
    config.known_opt = 4;
    DemaineSetCover algorithm(config);
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible);
    EXPECT_LE(result.stats.passes, 2 * alpha + 1) << "alpha=" << alpha;
  }
}

TEST(DemaineSetCoverTest, SpaceExponentIsLogarithmicInAlpha) {
  DemaineConfig config;
  config.alpha = 4;
  EXPECT_NEAR(DemaineSetCover(config).SpaceExponent(1024), 1.0, 1e-9);
  config.alpha = 16;
  EXPECT_NEAR(DemaineSetCover(config).SpaceExponent(1024), 0.5, 1e-9);
  config.alpha = 256;
  EXPECT_NEAR(DemaineSetCover(config).SpaceExponent(1024), 0.25, 1e-9);
}

TEST(DemaineSetCoverTest, UsesMoreSpaceThanAssadiAtEqualAlpha) {
  // The paper's motivating comparison: at equal alpha, the DIMV'14 space
  // exponent Theta(1/log alpha) exceeds Algorithm 1's 1/alpha once
  // alpha > 4, so its stored samples (and hence space) are larger.
  // alpha = 16: exponent 0.5 vs 1/16.
  Rng rng(4);
  const std::size_t n = 16384, m = 64;
  const SetSystem system = PlantedCoverInstance(n, m, 16, rng);
  const std::size_t alpha = 16;

  VectorSetStream stream_d(system);
  DemaineConfig d_config;
  d_config.alpha = alpha;
  DemaineSetCover demaine(d_config);
  Rng rng_d(5);
  const SetCoverRunResult d_result = demaine.RunWithGuess(stream_d, 1, rng_d);

  VectorSetStream stream_a(system);
  AssadiConfig a_config;
  a_config.alpha = alpha;
  a_config.epsilon = 0.5;
  AssadiSetCover assadi(a_config);
  Rng rng_a(6);
  const AssadiGuessResult a_result = assadi.RunWithGuess(stream_a, 1, rng_a);

  EXPECT_GT(d_result.stats.peak_space_bytes, a_result.peak_space_bytes);
}

TEST(DemaineSetCoverTest, DeterministicGivenSeed) {
  Rng rng(7);
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng);
  ArenaVector<SetId> first;
  for (int run = 0; run < 2; ++run) {
    VectorSetStream stream(system);
    DemaineConfig config;
    config.alpha = 4;
    config.seed = 11;
    DemaineSetCover algorithm(config);
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible);
    if (run == 0) {
      first = result.solution.chosen;
    } else {
      EXPECT_EQ(result.solution.chosen, first);
    }
  }
}

TEST(DemaineSetCoverTest, NameMentionsAlpha) {
  DemaineConfig config;
  config.alpha = 8;
  EXPECT_NE(DemaineSetCover(config).name().find("alpha=8"),
            std::string::npos);
}

TEST(DemaineSetCoverTest, RandomOrderStreamWorks) {
  Rng rng(8);
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng);
  Rng order_rng(9);
  VectorSetStream stream(system, StreamOrder::kRandomOnce, &order_rng);
  DemaineConfig config;
  config.alpha = 4;
  DemaineSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
}

TEST(DemaineSetCoverTest, SingleFullSetInstance) {
  SetSystem system(64);
  system.AddSet(DynamicBitset::Full(64));
  VectorSetStream stream(system);
  DemaineConfig config;
  config.alpha = 2;
  DemaineSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.solution.size(), 1u);
}

TEST(DemaineDeathTest, RejectsAlphaBelowTwo) {
  DemaineConfig config;
  config.alpha = 1;
  EXPECT_DEATH(DemaineSetCover{config}, "alpha");
}

}  // namespace
}  // namespace streamsc
