#include "core/har_peled_set_cover.h"

#include <gtest/gtest.h>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

TEST(HarPeledSetCoverTest, CoversPlantedInstance) {
  Rng rng(1);
  const SetSystem system = PlantedCoverInstance(400, 40, 4, rng);
  VectorSetStream stream(system);
  HarPeledConfig config;
  config.alpha = 2;
  HarPeledSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(HarPeledSetCoverTest, KnownOptWorks) {
  Rng rng(2);
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng);
  VectorSetStream stream(system);
  HarPeledConfig config;
  config.alpha = 2;
  config.known_opt = 3;
  HarPeledSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
}

TEST(HarPeledSetCoverTest, UsesMoreSpaceThanAssadiAtEqualAlpha) {
  // The paper's point (Section 3.4): the sharper element-sampling rate
  // (ρ = n^{-1/α} instead of n^{-2/α}) shrinks the space-dominant stored
  // projections. Pruning can mask this on instances whose optimal sets are
  // large, so compare the store stage with a guess õpt below opt — the
  // regime every run of the guessing driver passes through. Neither
  // algorithm prunes anything (thresholds exceed every set size), both
  // store one round of projections, and the Har-Peled rate is larger by a
  // factor ≈ n^{1/α}.
  Rng rng(3);
  const std::size_t n = 4096, m = 64, opt = 16;
  const SetSystem system = PlantedCoverInstance(n, m, opt, rng);
  const std::size_t alpha = 4;

  VectorSetStream stream_a(system);
  AssadiConfig assadi_config;
  assadi_config.alpha = alpha;
  assadi_config.epsilon = 0.5;
  AssadiSetCover assadi(assadi_config);
  Rng rng_a(4);
  const AssadiGuessResult assadi_result =
      assadi.RunWithGuess(stream_a, /*opt_guess=*/1, rng_a);

  VectorSetStream stream_h(system);
  HarPeledConfig hp_config;
  hp_config.alpha = alpha;
  HarPeledSetCover har_peled(hp_config);
  Rng rng_h(5);
  const SetCoverRunResult hp_result =
      har_peled.RunWithGuess(stream_h, /*opt_guess=*/1, rng_h);

  EXPECT_LT(assadi_result.peak_space_bytes, hp_result.stats.peak_space_bytes);
}

TEST(HarPeledSetCoverTest, FewerIterationsThanAlpha) {
  // ceil(α/2) sampling iterations + pruning passes: pass count stays
  // O(α).
  Rng rng(6);
  const SetSystem system = PlantedCoverInstance(512, 32, 3, rng);
  VectorSetStream stream(system);
  HarPeledConfig config;
  config.alpha = 4;
  config.known_opt = 3;
  HarPeledSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.stats.passes, 3u * 2u + 2u);
}

TEST(HarPeledSetCoverTest, GuessingDriverFindsCover) {
  Rng rng(7);
  const SetSystem system = UniformRandomInstance(256, 40, 48, rng);
  VectorSetStream stream(system);
  HarPeledConfig config;
  config.alpha = 2;
  HarPeledSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(HarPeledSetCoverTest, NameMentionsAlpha) {
  HarPeledConfig config;
  config.alpha = 5;
  HarPeledSetCover algorithm(config);
  EXPECT_NE(algorithm.name().find("alpha=5"), std::string::npos);
}

TEST(HarPeledDeathTest, RejectsAlphaZero) {
  HarPeledConfig config;
  config.alpha = 0;
  EXPECT_DEATH(HarPeledSetCover{config}, "alpha");
}

}  // namespace
}  // namespace streamsc
