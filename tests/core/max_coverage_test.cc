#include "core/max_coverage.h"

#include <gtest/gtest.h>

#include "instance/generators.h"
#include "instance/hard_max_coverage.h"
#include "offline/exact_max_coverage.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

TEST(ElementSamplingMcTest, ReturnsAtMostKSets) {
  Rng rng(1);
  const SetSystem system = UniformRandomInstance(300, 20, 60, rng);
  VectorSetStream stream(system);
  ElementSamplingMcConfig config;
  config.epsilon = 0.2;
  ElementSamplingMaxCoverage algorithm(config);
  const MaxCoverageRunResult result = algorithm.Run(stream, 3);
  EXPECT_LE(result.solution.size(), 3u);
  EXPECT_EQ(result.coverage, system.CoverageOf(result.solution.chosen));
}

TEST(ElementSamplingMcTest, NearOptimalOnRandomInstances) {
  // (1-ε)-approximation shape: compare to the exact optimum.
  Rng rng(2);
  const std::size_t k = 2;
  int good = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const SetSystem system = UniformRandomInstance(400, 16, 100, rng);
    const ExactMaxCoverageResult exact = SolveExactMaxCoverage(system, k);
    VectorSetStream stream(system);
    ElementSamplingMcConfig config;
    config.epsilon = 0.2;
    config.seed = 100 + trial;
    ElementSamplingMaxCoverage algorithm(config);
    const MaxCoverageRunResult result = algorithm.Run(stream, k);
    if (static_cast<double>(result.coverage) >=
        (1.0 - 2.0 * config.epsilon) * static_cast<double>(exact.coverage)) {
      ++good;
    }
  }
  EXPECT_GE(good, trials - 1);
}

TEST(ElementSamplingMcTest, SampleRateShrinksWithEpsilonSquared) {
  ElementSamplingMcConfig config;
  config.epsilon = 0.1;
  ElementSamplingMaxCoverage fine(config);
  config.epsilon = 0.2;
  ElementSamplingMaxCoverage coarse(config);
  const double r_fine = fine.SampleRate(1u << 20, 100, 2);
  const double r_coarse = coarse.SampleRate(1u << 20, 100, 2);
  EXPECT_NEAR(r_fine / r_coarse, 4.0, 0.01);
}

TEST(ElementSamplingMcTest, SpaceGrowsAsOneOverEpsilonSquared) {
  Rng rng(3);
  const SetSystem system = UniformRandomInstance(1u << 14, 64, 2048, rng);
  Bytes space_fine = 0, space_coarse = 0;
  for (const double eps : {0.1, 0.4}) {
    VectorSetStream stream(system);
    ElementSamplingMcConfig config;
    config.epsilon = eps;
    ElementSamplingMaxCoverage algorithm(config);
    const MaxCoverageRunResult result = algorithm.Run(stream, 2);
    (eps < 0.2 ? space_fine : space_coarse) = result.stats.peak_space_bytes;
  }
  EXPECT_GT(space_fine, 2 * space_coarse);
}

TEST(ElementSamplingMcTest, GreedyFallbackForLargeK) {
  Rng rng(4);
  const SetSystem system = UniformRandomInstance(200, 20, 30, rng);
  VectorSetStream stream(system);
  ElementSamplingMcConfig config;
  config.epsilon = 0.3;
  config.exact_k_limit = 2;  // force greedy for k = 5
  ElementSamplingMaxCoverage algorithm(config);
  const MaxCoverageRunResult result = algorithm.Run(stream, 5);
  EXPECT_LE(result.solution.size(), 5u);
  EXPECT_GT(result.coverage, 0u);
}

TEST(ElementSamplingMcTest, DistinguishesThetaOnHardDistribution) {
  // Result 2 upper side: with ε' < ε the sketch separates θ = 0 / θ = 1
  // D_MC instances around τ most of the time.
  HardMaxCoverageParams params;
  params.epsilon = 0.25;
  params.m = 12;
  HardMaxCoverageDistribution dist(params);
  Rng rng(5);
  int correct = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    const bool theta_one = trial % 2 == 0;
    const HardMaxCoverageInstance inst =
        theta_one ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
    const SetSystem system = inst.ToSetSystem();
    VectorSetStream stream(system);
    ElementSamplingMcConfig config;
    config.epsilon = 0.05;  // sketch much finer than the instance gap
    config.seed = 50 + trial;
    ElementSamplingMaxCoverage algorithm(config);
    const MaxCoverageRunResult result = algorithm.Run(stream, 2);
    const bool above = static_cast<double>(result.coverage) > inst.tau;
    if (above == theta_one) ++correct;
  }
  EXPECT_GE(correct, 9);
}

TEST(SieveMcTest, ReturnsAtMostKSets) {
  Rng rng(6);
  const SetSystem system = UniformRandomInstance(200, 25, 40, rng);
  VectorSetStream stream(system);
  SieveMaxCoverage algorithm;
  const MaxCoverageRunResult result = algorithm.Run(stream, 3);
  EXPECT_LE(result.solution.size(), 3u);
  EXPECT_EQ(result.stats.passes, 1u);
  EXPECT_EQ(result.coverage, system.CoverageOf(result.solution.chosen));
}

TEST(SieveMcTest, ConstantFactorQuality) {
  // Sieve guarantees ~(1/2 - ε) of optimum.
  Rng rng(7);
  int good = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const SetSystem system = UniformRandomInstance(300, 20, 60, rng);
    const ExactMaxCoverageResult exact = SolveExactMaxCoverage(system, 2);
    VectorSetStream stream(system);
    SieveMaxCoverage algorithm(SieveMcConfig{0.1});
    const MaxCoverageRunResult result = algorithm.Run(stream, 2);
    if (static_cast<double>(result.coverage) >=
        0.4 * static_cast<double>(exact.coverage)) {
      ++good;
    }
  }
  EXPECT_GE(good, trials - 1);
}

TEST(SieveMcTest, CoverageNeverExceedsUniverse) {
  Rng rng(8);
  const SetSystem system = UniformRandomInstance(100, 10, 50, rng);
  VectorSetStream stream(system);
  SieveMaxCoverage algorithm;
  const MaxCoverageRunResult result = algorithm.Run(stream, 4);
  EXPECT_LE(result.coverage, 100u);
}

// Config validation is CHECK-armed in every build mode. The sieve case is
// load-bearing: with the old release-stripped assert, epsilon = 0 froze
// the (1+eps)^j guess grid and Run() looped forever.
TEST(MaxCoverageDeathTest, SieveRejectsDegenerateEpsilon) {
  SieveMcConfig zero;
  zero.epsilon = 0.0;
  EXPECT_DEATH(SieveMaxCoverage{zero}, "epsilon");
  SieveMcConfig one;
  one.epsilon = 1.0;
  EXPECT_DEATH(SieveMaxCoverage{one}, "epsilon");
}

TEST(MaxCoverageDeathTest, ElementSamplingRejectsDegenerateEpsilon) {
  ElementSamplingMcConfig zero;
  zero.epsilon = 0.0;
  EXPECT_DEATH(ElementSamplingMaxCoverage{zero}, "epsilon");
  ElementSamplingMcConfig negative;
  negative.epsilon = -0.5;
  EXPECT_DEATH(ElementSamplingMaxCoverage{negative}, "epsilon");
}

}  // namespace
}  // namespace streamsc
