#include "core/emek_rosen_set_cover.h"

#include <gtest/gtest.h>

#include <cmath>

#include "instance/generators.h"
#include "offline/verifier.h"
#include "stream/set_stream.h"

namespace streamsc {
namespace {

TEST(EmekRosenTest, CoversSimpleInstance) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 4});
  system.AddSetFromIndices({5});
  VectorSetStream stream(system);
  EmekRosenSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(system.IsFeasibleCover(result.solution.chosen));
}

TEST(EmekRosenTest, CoversAcrossGenerators) {
  Rng rng(1);
  std::vector<SetSystem> instances;
  instances.push_back(PlantedCoverInstance(400, 40, 4, rng));
  instances.push_back(UniformRandomInstance(200, 25, 40, rng));
  instances.push_back(ZipfInstance(250, 30, 1.0, 120, rng));
  instances.push_back(BlogTopicInstance(200, 30, 0.15, rng));
  for (std::size_t i = 0; i < instances.size(); ++i) {
    VectorSetStream stream(instances[i]);
    EmekRosenSetCover algorithm;
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible) << "instance " << i;
    EXPECT_TRUE(VerifyCover(instances[i], result.solution).feasible);
  }
}

TEST(EmekRosenTest, DefaultThresholdIsSqrtN) {
  EmekRosenSetCover algorithm;
  EXPECT_EQ(algorithm.ThresholdFor(100), 10u);
  EXPECT_EQ(algorithm.ThresholdFor(101), 11u);  // ceil
  EXPECT_EQ(algorithm.ThresholdFor(1), 1u);
  EXPECT_EQ(algorithm.ThresholdFor(0), 1u);  // clamped floor
}

TEST(EmekRosenTest, ThresholdOverride) {
  EmekRosenConfig config;
  config.threshold = 7;
  EmekRosenSetCover algorithm(config);
  EXPECT_EQ(algorithm.ThresholdFor(100), 7u);
  EXPECT_NE(algorithm.name().find("theta=7"), std::string::npos);
}

TEST(EmekRosenTest, UsesAtMostTwoPasses) {
  // One streaming pass + at most one feasibility-verification pass.
  Rng rng(2);
  const SetSystem system = UniformRandomInstance(300, 30, 30, rng);
  VectorSetStream stream(system);
  EmekRosenSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.stats.passes, 2u);
}

TEST(EmekRosenTest, SinglePassWhenBigSetsSuffice) {
  // A full-universe set ends the run with no witness pass.
  SetSystem system(64);
  system.AddSet(DynamicBitset::Full(64));
  VectorSetStream stream(system);
  EmekRosenSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.stats.passes, 1u);
  EXPECT_EQ(result.solution.size(), 1u);
}

TEST(EmekRosenTest, ApproximationWithinSqrtNBand) {
  // Guarantee: <= sqrt(n) big picks + sqrt(n)*opt witness picks.
  Rng rng(3);
  const std::size_t n = 900, opt = 5;
  const SetSystem system = PlantedCoverInstance(n, 60, opt, rng);
  VectorSetStream stream(system);
  EmekRosenSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  EXPECT_LE(static_cast<double>(result.solution.size()),
            sqrt_n * (static_cast<double>(opt) + 1.0));
}

TEST(EmekRosenTest, SpaceIndependentOfM) {
  // Semi-streaming: growing m leaves the n-word state unchanged.
  Rng rng(4);
  Bytes space_small = 0, space_large = 0;
  for (const std::size_t m : {32, 512}) {
    const SetSystem system = PlantedCoverInstance(2048, m, 4, rng);
    VectorSetStream stream(system);
    EmekRosenSetCover algorithm;
    const SetCoverRunResult result = algorithm.Run(stream);
    ASSERT_TRUE(result.feasible);
    (m == 32 ? space_small : space_large) = result.stats.peak_space_bytes;
  }
  EXPECT_LT(static_cast<double>(space_large),
            1.5 * static_cast<double>(space_small));
}

TEST(EmekRosenTest, NoDuplicateIdsInSolution) {
  Rng rng(5);
  const SetSystem system = ZipfInstance(400, 50, 1.3, 150, rng);
  VectorSetStream stream(system);
  EmekRosenSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  ASSERT_TRUE(result.feasible);
  ArenaVector<SetId> ids = result.solution.chosen;
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(EmekRosenTest, InfeasibleInstanceReportedHonestly) {
  // An uncoverable universe: element 5 appears in no set.
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2});
  system.AddSetFromIndices({3, 4});
  VectorSetStream stream(system);
  EmekRosenSetCover algorithm;
  const SetCoverRunResult result = algorithm.Run(stream);
  EXPECT_FALSE(result.feasible);
}

// An explicit threshold above the universe size silently disables the
// big-set rule (degrading O(sqrt n) to O(n) witness-only mode) — Run now
// CHECK-rejects it in every build mode.
TEST(EmekRosenDeathTest, RejectsThresholdAboveUniverse) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2, 3, 4, 5});
  VectorSetStream stream(system);
  EmekRosenConfig config;
  config.threshold = 7;
  EmekRosenSetCover algorithm(config);
  EXPECT_DEATH(algorithm.Run(stream), "threshold exceeds the universe");
}

TEST(EmekRosenTest, ThresholdEqualToUniverseIsAccepted) {
  SetSystem system(6);
  system.AddSetFromIndices({0, 1, 2, 3, 4, 5});
  VectorSetStream stream(system);
  EmekRosenConfig config;
  config.threshold = 6;
  const SetCoverRunResult result = EmekRosenSetCover(config).Run(stream);
  EXPECT_TRUE(result.feasible);
}

}  // namespace
}  // namespace streamsc
