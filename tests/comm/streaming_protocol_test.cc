#include "comm/streaming_protocol.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/assadi_set_cover.h"
#include "core/max_coverage.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"

namespace streamsc {
namespace {

// Materializes sets [from, to) of a (possibly hybrid) system as the dense
// vectors the two-party protocol interface consumes.
std::vector<DynamicBitset> DenseSlice(const SetSystem& system, SetId from,
                                      SetId to) {
  std::vector<DynamicBitset> out;
  out.reserve(to - from);
  for (SetId id = from; id < to; ++id) out.push_back(system.set(id).ToDense());
  return out;
}

StreamingSetCoverValueProtocol::AlgorithmFactory AssadiFactory(
    std::size_t alpha) {
  return [alpha]() -> std::unique_ptr<StreamingSetCoverAlgorithm> {
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = 0.5;
    return std::make_unique<AssadiSetCover>(config);
  };
}

TEST(StreamingSetCoverProtocolTest, EstimatesPlantedOpt) {
  Rng rng(1);
  std::vector<SetId> planted;
  const SetSystem system = PlantedCoverInstance(300, 30, 3, rng, &planted);
  // Split sets between players arbitrarily (evens/odds).
  std::vector<DynamicBitset> alice, bob;
  for (std::size_t i = 0; i < system.num_sets(); ++i) {
    (i % 2 == 0 ? alice : bob).push_back(system.set(i).ToDense());
  }
  StreamingSetCoverValueProtocol protocol(AssadiFactory(2), false);
  Transcript transcript;
  Rng shared(2);
  const double estimate =
      protocol.EstimateOpt(alice, bob, 300, shared, &transcript);
  // α-approximation of value: opt <= estimate <= ~α(1+ε)² opt.
  EXPECT_GE(estimate, 3.0);
  EXPECT_LE(estimate, 2.0 * (1.5 * 1.5) * 3.0);
}

TEST(StreamingSetCoverProtocolTest, TranscriptChargesPassesTimesSpace) {
  Rng rng(3);
  const SetSystem system = PlantedCoverInstance(256, 20, 2, rng);
  const std::vector<DynamicBitset> alice =
      DenseSlice(system, 0, 10);
  const std::vector<DynamicBitset> bob = DenseSlice(
      system, 10, static_cast<SetId>(system.num_sets()));
  StreamingSetCoverValueProtocol protocol(AssadiFactory(2), false);
  Transcript transcript;
  Rng shared(4);
  protocol.EstimateOpt(alice, bob, 256, shared, &transcript);
  EXPECT_GT(transcript.TotalBits(), 0u);
  // Two crossings per pass.
  EXPECT_EQ(transcript.NumMessages() % 2, 0u);
  EXPECT_GE(transcript.NumMessages(), 2u);
}

TEST(StreamingSetCoverProtocolTest, RandomOrderVariantRuns) {
  Rng rng(5);
  const SetSystem system = PlantedCoverInstance(256, 20, 2, rng);
  const std::vector<DynamicBitset> alice =
      DenseSlice(system, 0, 10);
  const std::vector<DynamicBitset> bob = DenseSlice(
      system, 10, static_cast<SetId>(system.num_sets()));
  StreamingSetCoverValueProtocol protocol(AssadiFactory(2), true);
  Transcript transcript;
  Rng shared(6);
  const double estimate =
      protocol.EstimateOpt(alice, bob, 256, shared, &transcript);
  EXPECT_GE(estimate, 2.0);
  EXPECT_NE(protocol.name().find("random-order"), std::string::npos);
}

TEST(StreamingSetCoverProtocolTest, ThresholdGreedyBackendWorks) {
  Rng rng(7);
  const SetSystem system = PlantedCoverInstance(256, 24, 3, rng);
  const std::vector<DynamicBitset> alice =
      DenseSlice(system, 0, 12);
  const std::vector<DynamicBitset> bob = DenseSlice(
      system, 12, static_cast<SetId>(system.num_sets()));
  StreamingSetCoverValueProtocol protocol(
      []() -> std::unique_ptr<StreamingSetCoverAlgorithm> {
        return std::make_unique<ThresholdGreedySetCover>();
      },
      false);
  Transcript transcript;
  Rng shared(8);
  const double estimate =
      protocol.EstimateOpt(alice, bob, 256, shared, &transcript);
  EXPECT_GE(estimate, 3.0);
}

TEST(StreamingMaxCoverageProtocolTest, EstimatesCoverage) {
  Rng rng(9);
  const SetSystem system = UniformRandomInstance(200, 20, 60, rng);
  const std::vector<DynamicBitset> alice =
      DenseSlice(system, 0, 10);
  const std::vector<DynamicBitset> bob = DenseSlice(
      system, 10, static_cast<SetId>(system.num_sets()));
  StreamingMaxCoverageValueProtocol protocol(
      []() -> std::unique_ptr<StreamingMaxCoverageAlgorithm> {
        ElementSamplingMcConfig config;
        config.epsilon = 0.2;
        return std::make_unique<ElementSamplingMaxCoverage>(config);
      },
      false);
  Transcript transcript;
  Rng shared(10);
  const double value =
      protocol.EstimateValue(alice, bob, 200, 2, shared, &transcript);
  EXPECT_GT(value, 60.0);   // two sets of 60 minus overlap
  EXPECT_LE(value, 200.0);
  EXPECT_GT(transcript.TotalBits(), 0u);
}

}  // namespace
}  // namespace streamsc
