#include "comm/reductions.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/assadi_set_cover.h"
#include "core/max_coverage.h"

namespace streamsc {
namespace {

TEST(ConditionalSamplersTest, DisjNoMarginalNeverEmpty) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(SampleDisjNoMarginal(16, rng).None());
  }
}

TEST(ConditionalSamplersTest, ConditionalIntersectsInExactlyOneElement) {
  // (A, B) with B ~ marginal and A ~ conditional must look like D^N:
  // |A ∩ B| = 1.
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const DynamicBitset b = SampleDisjNoMarginal(16, rng);
    const DynamicBitset a = SampleDisjNoGivenOther(b, rng);
    EXPECT_EQ(a.CountAnd(b), 1u);
  }
}

TEST(ConditionalSamplersTest, JointMatchesDirectSamplerStatistics) {
  // Two-sided check of the Lemma 3.4 private-sampling step: the
  // marginal+conditional factorization must reproduce D^N's statistics
  // (|A|, |B|, |A ∪ B|) up to Monte-Carlo noise.
  const std::size_t t = 18;
  DisjDistribution direct(t);
  Rng rng(3);
  const int trials = 4000;
  double direct_a = 0, direct_union = 0, factored_a = 0, factored_union = 0;
  for (int i = 0; i < trials; ++i) {
    const DisjInstance d = direct.SampleNo(rng);
    direct_a += static_cast<double>(d.a.CountSet());
    direct_union += static_cast<double>((d.a | d.b).CountSet());
    const DynamicBitset b = SampleDisjNoMarginal(t, rng);
    const DynamicBitset a = SampleDisjNoGivenOther(b, rng);
    factored_a += static_cast<double>(a.CountSet());
    factored_union += static_cast<double>((a | b).CountSet());
  }
  EXPECT_NEAR(direct_a / trials, factored_a / trials, 0.15);
  EXPECT_NEAR(direct_union / trials, factored_union / trials, 0.2);
}

// A stand-in SetCover value protocol that answers with the *true* optimum
// decision for D_SC-style instances by checking all pairs — lets the
// reduction be tested independently of any streaming algorithm.
class PairOracleSetCoverProtocol : public SetCoverValueProtocol {
 public:
  std::string name() const override { return "pair-oracle"; }

  double EstimateOpt(const std::vector<DynamicBitset>& alice,
                     const std::vector<DynamicBitset>& bob, std::size_t n,
                     Rng& shared_rng, Transcript* transcript) override {
    (void)shared_rng;
    transcript->Append(Player::kAlice, 64, 1);
    for (const auto& s : alice) {
      for (const auto& t : bob) {
        if ((s | t).All()) return 2.0;
      }
    }
    return static_cast<double>(n);  // "large"
  }
};

TEST(DisjFromSetCoverTest, OracleBackendIsNearPerfect) {
  HardSetCoverParams params;
  params.n = 256;
  params.m = 8;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  PairOracleSetCoverProtocol oracle;
  DisjFromSetCoverProtocol reduction(params, &oracle);
  DisjDistribution dist(reduction.DisjT());
  Rng rng(4);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(reduction, dist, 100, rng);
  // The only error source: a disjoint input pair whose blocks happen to
  // leave [n] uncovered (measure ~0) or a θ=0-like instance with an
  // accidental 2-cover (o(1) by Lemma 3.2).
  EXPECT_LE(eval.error_rate, 0.05);
}

TEST(DisjFromSetCoverTest, StreamingBackendBeatsCoinFlip) {
  // Gap regime for Lemma 3.2 (n/t² ≫ 1) so θ = 0 instances have opt > 2α;
  // the streaming estimate is the (α+ε)-approximate solution size, so the
  // Yes cutoff is 2(α+ε) (< 2α+1 for ε < 1/2).
  HardSetCoverParams params;
  params.n = 4096;
  params.m = 6;
  params.alpha = 2.0;
  params.t_scale = 0.34;
  const double epsilon = 0.4;
  StreamingSetCoverValueProtocol backend(
      [epsilon]() -> std::unique_ptr<StreamingSetCoverAlgorithm> {
        AssadiConfig config;
        config.alpha = 2;
        config.epsilon = epsilon;
        return std::make_unique<AssadiSetCover>(config);
      },
      false);
  DisjFromSetCoverProtocol reduction(params, &backend,
                                     2.0 * (params.alpha + epsilon));
  DisjDistribution dist(reduction.DisjT());
  Rng rng(5);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(reduction, dist, 40, rng);
  EXPECT_LT(eval.error_rate, 0.35);
}

// Oracle MaxCover protocol: exact k=2 over the pair structure.
class PairOracleMaxCoverProtocol : public MaxCoverageValueProtocol {
 public:
  std::string name() const override { return "pair-oracle-mc"; }

  double EstimateValue(const std::vector<DynamicBitset>& alice,
                       const std::vector<DynamicBitset>& bob, std::size_t n,
                       std::size_t k, Rng& shared_rng,
                       Transcript* transcript) override {
    (void)n;
    (void)k;
    (void)shared_rng;
    transcript->Append(Player::kAlice, 64, 1);
    Count best = 0;
    for (const auto& s : alice) {
      for (const auto& t : bob) {
        best = std::max(best, (s | t).CountSet());
      }
    }
    return static_cast<double>(best);
  }
};

TEST(GhdFromMaxCoverTest, OracleBackendIsNearPerfect) {
  HardMaxCoverageParams params;
  params.epsilon = 0.2;
  params.m = 6;
  PairOracleMaxCoverProtocol oracle;
  GhdFromMaxCoverProtocol reduction(params, &oracle);
  GhdDistribution dist(reduction.GhdT(), reduction.SizeA(),
                       reduction.SizeB());
  Rng rng(6);
  const ProtocolEvaluation eval = EvaluateGhdProtocol(reduction, dist, 60, rng);
  EXPECT_LE(eval.error_rate, 0.1);
}

TEST(GhdFromMaxCoverTest, StreamingBackendBeatsCoinFlip) {
  // Lemma 4.5 with a real streaming algorithm behind the value protocol.
  // At this toy scale the element-sampling rate clamps to 1, so the
  // backend's k=2 value estimate is near-exact and the (1±Θ(ε))τ gap of
  // Lemma 4.3 is resolved correctly on almost every trial.
  HardMaxCoverageParams params;
  params.epsilon = 0.25;
  params.m = 6;
  StreamingMaxCoverageValueProtocol backend(
      []() -> std::unique_ptr<StreamingMaxCoverageAlgorithm> {
        ElementSamplingMcConfig config;
        config.epsilon = 0.05;
        config.exact_k_limit = 2;
        return std::make_unique<ElementSamplingMaxCoverage>(config);
      },
      /*shuffle_stream=*/true);
  GhdFromMaxCoverProtocol reduction(params, &backend);
  GhdDistribution dist(reduction.GhdT(), reduction.SizeA(),
                       reduction.SizeB());
  Rng rng(8);
  const ProtocolEvaluation eval = EvaluateGhdProtocol(reduction, dist, 30, rng);
  EXPECT_LT(eval.error_rate, 0.35);
  EXPECT_GT(eval.mean_bits, 0.0);
}

TEST(GhdFromMaxCoverTest, ParametersExposed) {
  HardMaxCoverageParams params;
  params.epsilon = 0.2;  // t1 = 25
  params.m = 4;
  PairOracleMaxCoverProtocol oracle;
  GhdFromMaxCoverProtocol reduction(params, &oracle);
  EXPECT_EQ(reduction.GhdT(), 25u);
  EXPECT_EQ(reduction.SizeA(), 12u);
  EXPECT_EQ(reduction.SizeB(), 12u);
}

TEST(EvaluateProtocolTest, CountsBitsBySide) {
  DisjDistribution dist(16);
  TrivialDisjProtocol protocol;
  Rng rng(7);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(protocol, dist, 200, rng);
  EXPECT_EQ(eval.trials, 200u);
  EXPECT_DOUBLE_EQ(eval.mean_bits_yes, 17.0);
  EXPECT_DOUBLE_EQ(eval.mean_bits_no, 17.0);
}

}  // namespace
}  // namespace streamsc
