#include "comm/protocol.h"

#include <gtest/gtest.h>

#include "comm/reductions.h"

namespace streamsc {
namespace {

TEST(TranscriptTest, AccumulatesBitsAndMessages) {
  Transcript transcript;
  EXPECT_EQ(transcript.TotalBits(), 0u);
  transcript.Append(Player::kAlice, 10, 111);
  transcript.Append(Player::kBob, 5, 222);
  EXPECT_EQ(transcript.TotalBits(), 15u);
  EXPECT_EQ(transcript.NumMessages(), 2u);
  EXPECT_EQ(transcript.messages()[0].sender, Player::kAlice);
  EXPECT_EQ(transcript.messages()[1].bits, 5u);
}

TEST(TranscriptTest, DigestIsOrderSensitive) {
  Transcript ab, ba;
  ab.Append(Player::kAlice, 1, 1);
  ab.Append(Player::kBob, 1, 2);
  ba.Append(Player::kBob, 1, 2);
  ba.Append(Player::kAlice, 1, 1);
  EXPECT_NE(ab.Digest(), ba.Digest());
}

TEST(TranscriptTest, DigestDeterministic) {
  Transcript a, b;
  a.Append(Player::kAlice, 7, 42);
  b.Append(Player::kAlice, 7, 42);
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(PlayerTest, Names) {
  EXPECT_STREQ(PlayerName(Player::kAlice), "alice");
  EXPECT_STREQ(PlayerName(Player::kBob), "bob");
}

TEST(TrivialDisjProtocolTest, ZeroErrorOnHardDistribution) {
  DisjDistribution dist(24);
  TrivialDisjProtocol protocol;
  Rng rng(1);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(protocol, dist, 300, rng);
  EXPECT_EQ(eval.errors, 0u);
  // t bits from Alice + 1 answer bit.
  EXPECT_DOUBLE_EQ(eval.mean_bits, 25.0);
}

TEST(TrivialGhdProtocolTest, ZeroErrorOnHardDistribution) {
  GhdDistribution dist(32, 16, 16);
  TrivialGhdProtocol protocol(dist);
  Rng rng(2);
  const ProtocolEvaluation eval = EvaluateGhdProtocol(protocol, dist, 300, rng);
  EXPECT_EQ(eval.errors, 0u);
  EXPECT_DOUBLE_EQ(eval.mean_bits, 33.0);
}

TEST(SampledDisjProtocolTest, FullBudgetIsExact) {
  DisjDistribution dist(24);
  SampledDisjProtocol protocol(24);
  Rng rng(3);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(protocol, dist, 300, rng);
  EXPECT_EQ(eval.errors, 0u);
}

TEST(SampledDisjProtocolTest, ErrorGrowsAsBudgetShrinks) {
  // Sub-linear communication must pay in error — the qualitative content
  // of the Ω(t) bound (Prop. 2.5).
  DisjDistribution dist(64);
  Rng rng(4);
  SampledDisjProtocol full(64), half(32), tiny(4);
  const double err_full =
      EvaluateDisjProtocol(full, dist, 600, rng).error_rate;
  const double err_half =
      EvaluateDisjProtocol(half, dist, 600, rng).error_rate;
  const double err_tiny =
      EvaluateDisjProtocol(tiny, dist, 600, rng).error_rate;
  EXPECT_EQ(err_full, 0.0);
  EXPECT_GT(err_tiny, err_half);
  EXPECT_GT(err_half, 0.0);
}

TEST(SampledDisjProtocolTest, OneSidedError) {
  // The sampled protocol can only err by answering Yes on a No instance.
  DisjDistribution dist(32);
  SampledDisjProtocol protocol(8);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const DisjInstance yes = dist.SampleYes(rng);
    Transcript transcript;
    Rng shared = rng.Fork();
    EXPECT_TRUE(protocol.Run(yes, shared, &transcript));
  }
}

TEST(SampledDisjProtocolTest, BudgetChargedOnTranscript) {
  DisjDistribution dist(32);
  SampledDisjProtocol protocol(10);
  Rng rng(6);
  const DisjInstance inst = dist.Sample(rng);
  Transcript transcript;
  Rng shared(1);
  protocol.Run(inst, shared, &transcript);
  EXPECT_EQ(transcript.TotalBits(), 11u);  // 10 sampled bits + 1 answer
}

TEST(ProtocolNamesTest, Names) {
  EXPECT_EQ(TrivialDisjProtocol().name(), "trivial-disj");
  EXPECT_NE(SampledDisjProtocol(5).name().find("bits=5"), std::string::npos);
}

}  // namespace
}  // namespace streamsc
