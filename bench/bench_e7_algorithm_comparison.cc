// E7 — Upper-bound landscape: Assadi (Theorem 2) vs Har-Peled-style
// iterative pruning vs multi-pass threshold greedy vs single-pass greedy,
// on shared instances. Reports passes / space / solution size / ratio.
// The paper's table-of-comparisons (Section 1) in measured form: Assadi
// dominates Har-Peled on space at equal alpha; threshold greedy is tiny
// in space but pays a log n approximation; one-pass pays even more.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "core/demaine_set_cover.h"
#include "core/emek_rosen_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "core/one_pass_set_cover.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "offline/greedy.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

struct Contender {
  std::string name;
  std::unique_ptr<StreamingSetCoverAlgorithm> algorithm;
};

void Compare(const std::string& title, const SetSystem& system,
             std::size_t opt_hint) {
  bench::Banner("E7: " + title,
                "who wins where: space vs passes vs approximation");
  std::vector<Contender> contenders;
  for (const std::size_t alpha : {2, 4}) {
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = 0.5;
    // Cap the exact sub-solver so failing guesses on instances with
    // moderate opt degrade to greedy in bounded time (the A2 ablation
    // quantifies what the optimal sub-solve buys; the cap only shows on
    // flat instances as guess-acceptance slack).
    config.exact_node_budget = 200'000;
    contenders.push_back({"assadi(a=" + std::to_string(alpha) + ")",
                          std::make_unique<AssadiSetCover>(config)});
    HarPeledConfig hp;
    hp.alpha = alpha;
    hp.exact_node_budget = 200'000;
    contenders.push_back({"har-peled(a=" + std::to_string(alpha) + ")",
                          std::make_unique<HarPeledSetCover>(hp)});
    DemaineConfig dm;
    dm.alpha = alpha;
    contenders.push_back({"demaine(a=" + std::to_string(alpha) + ")",
                          std::make_unique<DemaineSetCover>(dm)});
  }
  contenders.push_back(
      {"threshold-greedy", std::make_unique<ThresholdGreedySetCover>()});
  contenders.push_back(
      {"emek-rosen", std::make_unique<EmekRosenSetCover>()});
  contenders.push_back({"one-pass", std::make_unique<OnePassSetCover>()});

  TablePrinter table({"algorithm", "passes", "space", "space_bits", "sets",
                      "ratio_vs_opt", "feasible"});
  for (Contender& contender : contenders) {
    VectorSetStream stream(system);
    const SetCoverRunResult result = contender.algorithm->Run(stream);
    table.BeginRow();
    table.AddCell(contender.name);
    table.AddCell(result.stats.passes);
    table.AddCell(HumanBytes(result.stats.peak_space_bytes));
    table.AddCell(static_cast<double>(result.stats.peak_space_bytes) * 8.0,
                  0);
    table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
    table.AddCell(static_cast<double>(result.solution.size()) /
                      static_cast<double>(opt_hint),
                  2);
    table.AddCell(result.feasible ? "yes" : "NO");
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace streamsc

int main() {
  using namespace streamsc;
  {
    Rng rng(1);
    const std::size_t opt = 4;
    const SetSystem system = PlantedCoverInstance(8192, 128, opt, rng);
    Compare("planted cover (n=8192, m=128, opt=4)", system, opt);
  }
  {
    Rng rng(2);
    const SetSystem system = UniformRandomInstance(4096, 128, 512, rng);
    // A full exact solve is intractable here (opt ~ 25 over 128 sets);
    // normalize by offline greedy instead — an upper bound on opt, so the
    // reported "ratio" column is a *lower* bound on the true ratio and
    // the cross-algorithm ordering is unaffected.
    const std::size_t greedy_size = GreedySetCover(system).size();
    Compare("uniform random (n=4096, m=128, |S|=512; ratio vs greedy)",
            system, greedy_size);
  }
  {
    Rng rng(3);
    const SetSystem system = NeedleInstance(4096, 96, 6, rng);
    Compare("needles in haystack (n=4096, m=96, opt=6)", system, 6);
  }
  std::cout << "\n# expect per the paper: assadi space < har-peled space at "
               "equal alpha; threshold-greedy smallest space but log-n "
               "ratio; one-pass worst ratio on adversarial instances\n";
  return 0;
}
