// E7 — Upper-bound landscape: Assadi (Theorem 2) vs Har-Peled-style
// iterative pruning vs DIMV'14 vs multi-pass threshold greedy vs the
// single-pass baselines, on shared instances. Reports passes / space /
// solution size / ratio, now per thread count: every contender is built
// from the string-keyed SolverRegistry (the same front door the CLI and
// tests use) and runs once sequentially and once on an 8-thread pool
// bound per run via RunContext, with the speedup column tracking what
// the routed engine passes buy. Solutions are bit-identical across the
// two rows by the engine's determinism contract (asserted here, proven
// exhaustively in tests/integration/solver_matrix_test.cc).

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/solver_registry.h"
#include "bench_common.h"
#include "instance/generators.h"
#include "offline/greedy.h"
#include "stream/engine_context.h"
#include "stream/set_stream.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

constexpr std::size_t kParallelThreads = 8;

struct Contender {
  std::string label;
  std::string solver;                 // registry key
  std::vector<std::string> options;   // key=value args
};

void Compare(const std::string& title, const SetSystem& system,
             std::size_t opt_hint, bench::BenchJson* json) {
  bench::Banner("E7: " + title,
                "who wins where: space vs passes vs approximation; "
                "threads column tracks the engine-routed speedup");
  std::vector<Contender> contenders;
  for (const std::size_t alpha : {2, 4}) {
    const std::string a = std::to_string(alpha);
    // Cap the exact sub-solver so failing guesses on instances with
    // moderate opt degrade to greedy in bounded time (the A2 ablation
    // quantifies what the optimal sub-solve buys; the cap only shows on
    // flat instances as guess-acceptance slack).
    contenders.push_back({"assadi(a=" + a + ")", "assadi",
                          {"alpha=" + a, "epsilon=0.5",
                           "exact_node_budget=200000"}});
    contenders.push_back({"har-peled(a=" + a + ")", "har_peled",
                          {"alpha=" + a, "exact_node_budget=200000"}});
    contenders.push_back({"demaine(a=" + a + ")", "demaine", {"alpha=" + a}});
  }
  contenders.push_back({"threshold-greedy", "threshold_greedy", {}});
  contenders.push_back({"emek-rosen", "emek_rosen", {}});
  contenders.push_back({"one-pass", "one_pass", {}});

  // MakeEngine owns the thread-count policy: 1 resolves to the null
  // (sequential) engine, kParallelThreads to a shared pool. The engine is
  // bound per *run* (RunContext), so one pool serves every contender.
  const std::unique_ptr<ParallelPassEngine> pool =
      MakeEngine(kParallelThreads);
  TablePrinter table({"algorithm", "threads", "passes", "space", "sets",
                      "ratio_vs_opt", "feasible", "wall_ms", "speedup"});
  for (const Contender& contender : contenders) {
    ArenaVector<SetId> sequential_solution;
    double sequential_wall = 0.0;
    for (const std::size_t threads : {std::size_t{1}, kParallelThreads}) {
      ParallelPassEngine* engine = threads == 1 ? nullptr : pool.get();
      VectorSetStream stream(system);
      if (engine != nullptr) {
        // A silent sequential fallback here would report a fake 1.0x.
        RequireSharded(stream, engine);
      }
      StatusOr<std::unique_ptr<AnySolver>> solver =
          SolverRegistry::Global().Create(contender.solver,
                                          contender.options);
      STREAMSC_CHECK(solver.ok(),
                     "bench misconfiguration: the registry rejected a "
                     "contender's options");
      RunContext context;
      context.engine = engine;
      StatusOr<SolveReport> report = (*solver)->Run(stream, context);
      STREAMSC_CHECK(report.ok(), "contender run failed");
      if (threads == 1) {
        sequential_solution = report->solution.chosen;
        sequential_wall = report->wall_seconds;
      } else {
        STREAMSC_CHECK(report->solution.chosen == sequential_solution,
                       "determinism violation: a solver's parallel run "
                       "diverged from its sequential run");
      }
      table.BeginRow();
      table.AddCell(contender.label);
      table.AddCell(static_cast<std::uint64_t>(threads));
      table.AddCell(report->passes);
      table.AddCell(HumanBytes(report->peak_space_bytes));
      table.AddCell(static_cast<std::uint64_t>(report->solution.size()));
      table.AddCell(static_cast<double>(report->solution.size()) /
                        static_cast<double>(opt_hint),
                    2);
      table.AddCell(report->feasible ? "yes" : "NO");
      table.AddCell(report->wall_seconds * 1e3, 2);
      table.AddCell(threads == 1
                        ? 1.0
                        : sequential_wall /
                              std::max(report->wall_seconds, 1e-9),
                    2);
      json->Add({contender.label, title, system.universe_size(),
                 system.num_sets(), threads, report->passes,
                 report->peak_space_bytes, report->wall_seconds, {}});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace streamsc

int main() {
  using namespace streamsc;
  bench::BenchJson json("e7_algorithm_comparison");
  {
    Rng rng(1);
    const std::size_t opt = 4;
    const SetSystem system = PlantedCoverInstance(8192, 128, opt, rng);
    Compare("planted cover (n=8192, m=128, opt=4)", system, opt, &json);
  }
  {
    Rng rng(2);
    const SetSystem system = UniformRandomInstance(4096, 128, 512, rng);
    // A full exact solve is intractable here (opt ~ 25 over 128 sets);
    // normalize by offline greedy instead — an upper bound on opt, so the
    // reported "ratio" column is a *lower* bound on the true ratio and
    // the cross-algorithm ordering is unaffected.
    const std::size_t greedy_size = GreedySetCover(system).size();
    Compare("uniform random (n=4096, m=128, |S|=512; ratio vs greedy)",
            system, greedy_size, &json);
  }
  {
    Rng rng(3);
    const SetSystem system = NeedleInstance(4096, 96, 6, rng);
    Compare("needles in haystack (n=4096, m=96, opt=6)", system, 6, &json);
  }
  json.Write();
  std::cout << "\n# expect per the paper: assadi space < har-peled space at "
               "equal alpha; threshold-greedy smallest space but log-n "
               "ratio; one-pass worst ratio on adversarial instances\n";
  return 0;
}
