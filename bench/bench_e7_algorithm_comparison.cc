// E7 — Upper-bound landscape: Assadi (Theorem 2) vs Har-Peled-style
// iterative pruning vs DIMV'14 vs multi-pass threshold greedy vs the
// single-pass baselines, on shared instances. Reports passes / space /
// solution size / ratio, now per thread count: every solver accepts a
// ParallelPassEngine, so each contender runs once sequentially and once
// on an 8-thread pool, with the speedup column tracking what the routed
// engine passes buy. Solutions are bit-identical across the two rows by
// the engine's determinism contract (asserted here, proven exhaustively
// in tests/integration/solver_matrix_test.cc).

#include <algorithm>
#include <functional>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "core/demaine_set_cover.h"
#include "core/emek_rosen_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "core/one_pass_set_cover.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "offline/greedy.h"
#include "stream/engine_context.h"
#include "stream/set_stream.h"
#include "util/check.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

constexpr std::size_t kParallelThreads = 8;

struct Contender {
  std::string name;
  // Builds a fresh solver wired to the given engine (null = sequential).
  std::function<std::unique_ptr<StreamingSetCoverAlgorithm>(
      ParallelPassEngine*)>
      make;
};

void Compare(const std::string& title, const SetSystem& system,
             std::size_t opt_hint) {
  bench::Banner("E7: " + title,
                "who wins where: space vs passes vs approximation; "
                "threads column tracks the engine-routed speedup");
  std::vector<Contender> contenders;
  for (const std::size_t alpha : {2, 4}) {
    contenders.push_back(
        {"assadi(a=" + std::to_string(alpha) + ")",
         [alpha](ParallelPassEngine* engine) {
           AssadiConfig config;
           config.alpha = alpha;
           config.epsilon = 0.5;
           // Cap the exact sub-solver so failing guesses on instances
           // with moderate opt degrade to greedy in bounded time (the A2
           // ablation quantifies what the optimal sub-solve buys; the cap
           // only shows on flat instances as guess-acceptance slack).
           config.exact_node_budget = 200'000;
           config.engine = engine;
           return std::make_unique<AssadiSetCover>(config);
         }});
    contenders.push_back(
        {"har-peled(a=" + std::to_string(alpha) + ")",
         [alpha](ParallelPassEngine* engine) {
           HarPeledConfig hp;
           hp.alpha = alpha;
           hp.exact_node_budget = 200'000;
           hp.engine = engine;
           return std::make_unique<HarPeledSetCover>(hp);
         }});
    contenders.push_back(
        {"demaine(a=" + std::to_string(alpha) + ")",
         [alpha](ParallelPassEngine* engine) {
           DemaineConfig dm;
           dm.alpha = alpha;
           dm.engine = engine;
           return std::make_unique<DemaineSetCover>(dm);
         }});
  }
  contenders.push_back({"threshold-greedy", [](ParallelPassEngine* engine) {
                          ThresholdGreedyConfig config;
                          config.engine = engine;
                          return std::make_unique<ThresholdGreedySetCover>(
                              config);
                        }});
  contenders.push_back({"emek-rosen", [](ParallelPassEngine* engine) {
                          EmekRosenConfig config;
                          config.engine = engine;
                          return std::make_unique<EmekRosenSetCover>(config);
                        }});
  contenders.push_back({"one-pass", [](ParallelPassEngine* engine) {
                          OnePassConfig config;
                          config.engine = engine;
                          return std::make_unique<OnePassSetCover>(config);
                        }});

  // MakeEngine owns the thread-count policy: 1 resolves to the null
  // (sequential) engine, kParallelThreads to a shared pool.
  const std::unique_ptr<ParallelPassEngine> pool =
      MakeEngine(kParallelThreads);
  TablePrinter table({"algorithm", "threads", "passes", "space", "sets",
                      "ratio_vs_opt", "feasible", "wall_ms", "speedup"});
  for (Contender& contender : contenders) {
    std::vector<SetId> sequential_solution;
    double sequential_wall = 0.0;
    for (const std::size_t threads : {std::size_t{1}, kParallelThreads}) {
      ParallelPassEngine* engine = threads == 1 ? nullptr : pool.get();
      VectorSetStream stream(system);
      if (engine != nullptr) {
        // A silent sequential fallback here would report a fake 1.0x.
        RequireSharded(stream, engine);
      }
      const SetCoverRunResult result =
          contender.make(engine)->Run(stream);
      if (threads == 1) {
        sequential_solution = result.solution.chosen;
        sequential_wall = result.stats.wall_seconds;
      } else {
        STREAMSC_CHECK(result.solution.chosen == sequential_solution,
                       "determinism violation: a solver's parallel run "
                       "diverged from its sequential run");
      }
      table.BeginRow();
      table.AddCell(contender.name);
      table.AddCell(static_cast<std::uint64_t>(threads));
      table.AddCell(result.stats.passes);
      table.AddCell(HumanBytes(result.stats.peak_space_bytes));
      table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
      table.AddCell(static_cast<double>(result.solution.size()) /
                        static_cast<double>(opt_hint),
                    2);
      table.AddCell(result.feasible ? "yes" : "NO");
      table.AddCell(result.stats.wall_seconds * 1e3, 2);
      table.AddCell(threads == 1
                        ? 1.0
                        : sequential_wall /
                              std::max(result.stats.wall_seconds, 1e-9),
                    2);
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace streamsc

int main() {
  using namespace streamsc;
  {
    Rng rng(1);
    const std::size_t opt = 4;
    const SetSystem system = PlantedCoverInstance(8192, 128, opt, rng);
    Compare("planted cover (n=8192, m=128, opt=4)", system, opt);
  }
  {
    Rng rng(2);
    const SetSystem system = UniformRandomInstance(4096, 128, 512, rng);
    // A full exact solve is intractable here (opt ~ 25 over 128 sets);
    // normalize by offline greedy instead — an upper bound on opt, so the
    // reported "ratio" column is a *lower* bound on the true ratio and
    // the cross-algorithm ordering is unaffected.
    const std::size_t greedy_size = GreedySetCover(system).size();
    Compare("uniform random (n=4096, m=128, |S|=512; ratio vs greedy)",
            system, greedy_size);
  }
  {
    Rng rng(3);
    const SetSystem system = NeedleInstance(4096, 96, 6, rng);
    Compare("needles in haystack (n=4096, m=96, opt=6)", system, 6);
  }
  std::cout << "\n# expect per the paper: assadi space < har-peled space at "
               "equal alpha; threshold-greedy smallest space but log-n "
               "ratio; one-pass worst ratio on adversarial instances\n";
  return 0;
}
