// E1 — Theorem 2: Algorithm 1 achieves an (α+ε)-approximation in (2α+1)
// passes and Õ(m·n^{1/α}/ε² + n/ε) space. This bench sweeps α, n, m on
// planted-cover instances with known opt and reports measured passes,
// approximation ratio, peak space, and the ratio of measured space to the
// m·n^{1/α}·log m + n prediction (which should stay in a constant band).

#include <iostream>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "stream/set_stream.h"
#include "util/math.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

// The paper's sampling constant 16·õpt·log m saturates the rate (clamps to
// 1, i.e. "store everything") at laptop-scale n, flattening the n^{1/alpha}
// exponent the bench is after. A uniform boost < 1 rescales the constant
// for every row equally, preserving the shape while keeping the rate in
// (0, 1). DESIGN.md documents this substitution.
constexpr double kBoost = 1.0 / 64.0;

void SweepAlpha() {
  bench::Banner("E1a: space vs alpha",
                "space ~ m*n^{1/alpha}, passes = 2*alpha+1, ratio <= "
                "alpha+eps  [Theorem 2]");
  const std::size_t n = 16384, m = 256, opt = 4;
  const double eps = 0.5;
  bench::Params("n=16384 m=256 opt=4 eps=0.5 boost=1/64 planted-cover");
  Rng rng(1);
  const SetSystem system = PlantedCoverInstance(n, m, opt, rng);

  TablePrinter table({"alpha", "passes", "sets", "ratio", "space", "bits",
                      "pred_bits(m*n^{1/a}*lnm + n)", "meas/pred"});
  for (std::size_t alpha = 1; alpha <= 6; ++alpha) {
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = eps;
    config.sampling_boost = kBoost;
    AssadiSetCover algorithm(config);
    Rng run_rng(100 + alpha);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt, run_rng);
    const double predicted_bits =
        static_cast<double>(m) *
            NthRoot(static_cast<double>(n), static_cast<double>(alpha)) *
            SafeLog(static_cast<double>(m)) / (eps) +
        static_cast<double>(n);
    const double measured_bits =
        static_cast<double>(result.peak_space_bytes) * 8.0;
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(alpha));
    table.AddCell(result.passes);
    table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
    table.AddCell(static_cast<double>(result.solution.size()) / opt, 2);
    table.AddCell(HumanBytes(result.peak_space_bytes));
    table.AddCell(measured_bits, 0);
    table.AddCell(predicted_bits, 0);
    table.AddCell(measured_bits / predicted_bits, 3);
  }
  table.Print(std::cout);
}

void SweepN() {
  bench::Banner("E1b: space vs n at fixed alpha",
                "space grows ~ n^{1/alpha} (sublinear in n)  [Theorem 2]");
  const std::size_t m = 256, opt = 4, alpha = 2;
  bench::Params("m=256 opt=4 alpha=2 eps=0.5 boost=1/64 planted-cover");
  TablePrinter table(
      {"n", "space_bits", "n^{1/2}", "bits/(m*sqrt(n)*lnm)", "passes"});
  for (const std::size_t n : {2048, 4096, 8192, 16384, 32768}) {
    Rng rng(n);
    const SetSystem system = PlantedCoverInstance(n, m, opt, rng);
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = 0.5;
    config.sampling_boost = kBoost;
    AssadiSetCover algorithm(config);
    Rng run_rng(200 + n);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt, run_rng);
    const double bits = static_cast<double>(result.peak_space_bytes) * 8.0;
    const double norm =
        bits / (static_cast<double>(m) * NthRoot(n, 2.0) *
                SafeLog(static_cast<double>(m)));
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(n));
    table.AddCell(bits, 0);
    table.AddCell(NthRoot(n, 2.0), 1);
    table.AddCell(norm, 3);
    table.AddCell(result.passes);
  }
  table.Print(std::cout);
  std::cout << "# expect: last column roughly flat (constant band) while "
               "n grows 16x\n";
}

void SweepM() {
  bench::Banner("E1c: space vs m at fixed alpha",
                "space grows linearly in m  [Theorem 2]");
  const std::size_t n = 8192, opt = 4, alpha = 3;
  bench::Params("n=8192 opt=4 alpha=3 eps=0.5 boost=1/64 planted-cover");
  TablePrinter table({"m", "space_bits", "bits/m"});
  for (const std::size_t m : {64, 128, 256, 512, 1024}) {
    Rng rng(m);
    const SetSystem system = PlantedCoverInstance(n, m, opt, rng);
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = 0.5;
    config.sampling_boost = kBoost;
    AssadiSetCover algorithm(config);
    Rng run_rng(300 + m);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt, run_rng);
    const double bits = static_cast<double>(result.peak_space_bytes) * 8.0;
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(m));
    table.AddCell(bits, 0);
    table.AddCell(bits / static_cast<double>(m), 1);
  }
  table.Print(std::cout);
  std::cout << "# expect: bits/m roughly flat after the n-bit floor "
               "amortizes\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::SweepAlpha();
  streamsc::SweepN();
  streamsc::SweepM();
  return 0;
}
