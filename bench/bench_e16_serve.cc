// E16: the solve daemon under concurrent load — requests/sec and tail
// latency through the full socket path.
//
// Every other bench measures the library in-process; this one measures
// what the serving layer adds on top: frame encode/decode, a Unix-socket
// round-trip, ring admission, and the per-slot warm SolveSession reuse.
// An in-process SolveService is started over one mmap-cached instance,
// then hammered by {1, 4, 8} client threads, each holding its own
// connection and issuing back-to-back solve requests.
//
// Reported per width, for a cheap solver (threshold_greedy, the
// protocol-overhead probe) and a multi-pass one (assadi, the
// solver-bound regime):
//
//   req_per_sec  aggregate completed requests / wall time;
//   p50/p99 ms   client-observed request latency percentiles
//                (obs/histogram.h LatencyHistogram, merged across
//                client threads).
//
// The daemon runs with as many worker slots as the widest client sweep,
// and a ring sized so admission never answers BUSY — this bench measures
// throughput, not backpressure (tests/serve/solve_service_test.cc pins
// the BUSY path).
//
// Usage: bench_e16_serve [n] [opt] [decoys] [iters]
//   defaults: n=16384 opt=16 decoys=48 iters=200
//   (planted block size = n/opt; m = opt + decoys; iters is per client
//    thread)

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "instance/generators.h"
#include "instance/set_system.h"
#include "obs/histogram.h"
#include "serve/solve_client.h"
#include "serve/solve_service.h"
#include "storage/binary_instance_writer.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

struct LoadResult {
  double wall_seconds = 0.0;
  LatencyHistogram latency;
  std::uint64_t requests = 0;
  std::uint64_t passes = 0;  // from the last response, for the JSON row
};

// Drives `clients` threads, each with a private connection, issuing
// `iters` identical solve requests. Any wire or solver error aborts the
// bench — this is a throughput probe, errors mean the setup is wrong.
LoadResult DriveClients(const std::string& endpoint, int clients, int iters,
                        const std::string& solver,
                        const std::vector<std::string>& args) {
  std::vector<LatencyHistogram> histograms(clients);
  std::vector<std::uint64_t> passes(clients, 0);
  std::vector<std::string> errors(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<serve::SolveClient> client =
          serve::SolveClient::Connect(endpoint);
      if (!client.ok()) {
        errors[c] = client.status().ToString();
        return;
      }
      for (int i = 0; i < iters; ++i) {
        Stopwatch request;
        StatusOr<serve::SolveResponse> response =
            client->Solve("bench", solver, args);
        if (!response.ok()) {
          errors[c] = response.status().ToString();
          return;
        }
        histograms[c].Record(static_cast<std::uint64_t>(
            request.ElapsedSeconds() * 1e9));
        passes[c] = response->passes;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  LoadResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  for (int c = 0; c < clients; ++c) {
    if (!errors[c].empty()) {
      std::cerr << "client " << c << " failed: " << errors[c] << "\n";
      std::exit(1);
    }
    result.latency.Merge(histograms[c]);
    result.requests += histograms[c].count();
    result.passes = passes[c];
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::size_t opt = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::size_t decoys =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 48;
  const int iters = argc > 4 ? std::atoi(argv[4]) : 200;

  bench::Banner("E16",
                "the serving layer adds protocol overhead, not solver "
                "slowdown: daemon solves scale with client width until "
                "worker slots saturate");
  bench::Params("n=" + std::to_string(n) + " opt=" + std::to_string(opt) +
                " decoys=" + std::to_string(decoys) +
                " iters=" + std::to_string(iters) + " clients={1,4,8}");

  Rng rng(16);
  const SetSystem system = PlantedCoverInstance(n, opt + decoys, opt, rng);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "streamsc_bench_e16";
  std::filesystem::create_directories(dir);
  const std::string instance_path = (dir / "bench.sscb1").string();
  const std::string socket_path = (dir / "solve.sock").string();
  {
    const Status written =
        BinaryInstanceWriter::WriteSystem(system, instance_path);
    if (!written.ok()) {
      std::cerr << "write instance: " << written.ToString() << "\n";
      return 1;
    }
  }

  constexpr int kMaxClients = 8;
  serve::ServiceOptions options;
  options.endpoint = "unix:" + socket_path;
  options.workers = kMaxClients;
  options.ring_capacity = 2 * kMaxClients;  // admission never answers BUSY
  serve::SolveService service(std::move(options));
  if (Status status = service.AddInstance("bench", instance_path);
      !status.ok()) {
    std::cerr << "add instance: " << status.ToString() << "\n";
    return 1;
  }
  if (Status status = service.Start(); !status.ok()) {
    std::cerr << "start daemon: " << status.ToString() << "\n";
    return 1;
  }

  const std::string instance_label =
      "planted n=" + std::to_string(n) + " opt=" + std::to_string(opt) +
      " decoys=" + std::to_string(decoys);
  bench::BenchJson json("e16");
  TablePrinter table({"solver", "clients", "requests", "req_per_sec",
                      "p50_ms", "p99_ms"});
  const struct {
    const char* solver;
    std::vector<std::string> args;
  } workloads[] = {
      {"threshold_greedy", {"beta=4"}},
      {"assadi", {"alpha=2"}},
  };
  for (const auto& workload : workloads) {
    for (const int clients : {1, 4, 8}) {
      const LoadResult run = DriveClients(
          serve::EndpointSpec(service.endpoint()), clients, iters,
          workload.solver, workload.args);
      const double req_per_sec =
          static_cast<double>(run.requests) / run.wall_seconds;
      const double p50_ms = run.latency.ValueAtPercentile(50.0) / 1e6;
      const double p99_ms = run.latency.ValueAtPercentile(99.0) / 1e6;
      table.BeginRow();
      table.AddCell(workload.solver);
      table.AddCell(clients);
      table.AddCell(run.requests);
      table.AddCell(req_per_sec, 1);
      table.AddCell(p50_ms, 3);
      table.AddCell(p99_ms, 3);
      bench::BenchResult row;
      row.solver = workload.solver;
      row.instance = instance_label;
      row.n = n;
      row.m = system.num_sets();
      row.threads = static_cast<std::size_t>(clients);
      row.passes = run.passes;
      row.wall_seconds = run.wall_seconds;
      row.extras = {{"requests_per_sec", req_per_sec},
                    {"p50_ms", p50_ms},
                    {"p99_ms", p99_ms}};
      json.Add(std::move(row));
    }
  }
  table.PrintWithTitle(std::cout, "solve daemon throughput (unix socket)");
  json.Write();

  service.Stop();
  std::filesystem::remove_all(dir);
  return 0;
}
