// E6 — Theorems 1/3 machinery, run for real: (a) a p-pass s-space
// streaming algorithm simulated as a two-party protocol has ~2p·s bits of
// communication; (b) the Lemma 3.4 reduction (Disj from SetCover) solves
// Disj on the hard distribution with small error; (c) the trivial protocol
// reference point and the communication scaling in alpha.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "comm/reductions.h"
#include "core/assadi_set_cover.h"
#include "instance/hard_set_cover.h"
#include "util/math.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

constexpr double kEpsilon = 0.4;  // < 1/2 so the 2(alpha+eps) cutoff works

StreamingSetCoverValueProtocol::AlgorithmFactory AssadiFactory(
    std::size_t alpha) {
  return [alpha]() -> std::unique_ptr<StreamingSetCoverAlgorithm> {
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = kEpsilon;
    return std::make_unique<AssadiSetCover>(config);
  };
}

void SimulationCost() {
  bench::Banner("E6a: streaming -> communication simulation",
                "protocol bits = 2*passes*space; scales as m*n^{1/alpha}  "
                "[Theorem 1 proof]");
  const std::size_t n = 2048, m = 32;
  bench::Params("D_SC-style split: n=2048 m=32 per player; alpha sweep");
  TablePrinter table(
      {"alpha", "estimate", "bits", "m*n^{1/alpha}", "bits/bound"});
  for (const std::size_t alpha : {1, 2, 3, 4}) {
    HardSetCoverParams params;
    params.n = n;
    params.m = m;
    params.alpha = static_cast<double>(alpha);
    params.t_scale = 1.0;
    HardSetCoverDistribution dist(params);
    Rng rng(alpha * 11 + 1);
    const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
    StreamingSetCoverValueProtocol protocol(AssadiFactory(alpha), false);
    Transcript transcript;
    Rng shared(alpha + 3);
    const double estimate = protocol.EstimateOpt(inst.s_sets, inst.t_sets, n,
                                                 shared, &transcript);
    const double bound = static_cast<double>(2 * m) *
                         NthRoot(static_cast<double>(n),
                                 static_cast<double>(alpha));
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(alpha));
    table.AddCell(estimate, 1);
    table.AddCell(static_cast<double>(transcript.TotalBits()), 0);
    table.AddCell(bound, 0);
    table.AddCell(static_cast<double>(transcript.TotalBits()) / bound, 2);
  }
  table.Print(std::cout);
  std::cout << "# expect: bits/bound stays Omega(1) — real protocols sit "
               "above the lower bound at every alpha\n";
}

void ReductionEndToEnd() {
  bench::Banner("E6b: Lemma 3.4 reduction, end to end",
                "an alpha-approx SetCover protocol solves Disj_t on D_Disj "
                "with small error");
  TablePrinter table({"backend", "t", "trials", "errors", "error_rate",
                      "mean_bits"});

  // Gap regime (Lemma 3.2): t_scale pulls t down so theta=0 instances
  // provably exceed 2*alpha; the Yes cutoff is 2(alpha+eps) because the
  // streaming estimate is the (alpha+eps)-approximate solution size.
  HardSetCoverParams params;
  params.n = 4096;
  params.m = 6;
  params.alpha = 2.0;
  params.t_scale = 0.34;

  // Backend 1: the streaming algorithm via simulation.
  {
    StreamingSetCoverValueProtocol backend(AssadiFactory(2), true);
    DisjFromSetCoverProtocol reduction(params, &backend,
                                       2.0 * (params.alpha + kEpsilon));
    DisjDistribution dist(reduction.DisjT());
    Rng rng(21);
    const ProtocolEvaluation eval =
        EvaluateDisjProtocol(reduction, dist, 40, rng);
    table.BeginRow();
    table.AddCell("assadi(alpha=2) via simulation");
    table.AddCell(static_cast<std::uint64_t>(reduction.DisjT()));
    table.AddCell(static_cast<std::uint64_t>(eval.trials));
    table.AddCell(static_cast<std::uint64_t>(eval.errors));
    table.AddCell(eval.error_rate, 3);
    table.AddCell(eval.mean_bits, 0);
  }

  // Backend 2: trivial protocol reference (send everything).
  {
    DisjDistribution dist(
        DisjUniverseSize(params.n, params.m, params.alpha, params.t_scale));
    TrivialDisjProtocol trivial;
    Rng rng(22);
    const ProtocolEvaluation eval =
        EvaluateDisjProtocol(trivial, dist, 500, rng);
    table.BeginRow();
    table.AddCell("trivial (Alice sends A)");
    table.AddCell(static_cast<std::uint64_t>(dist.t()));
    table.AddCell(static_cast<std::uint64_t>(eval.trials));
    table.AddCell(static_cast<std::uint64_t>(eval.errors));
    table.AddCell(eval.error_rate, 3);
    table.AddCell(eval.mean_bits, 0);
  }
  table.Print(std::cout);
  std::cout << "# expect: reduction error well below 1/2 (the coin-flip "
               "line), confirming the embedding is faithful\n";
}

void BudgetedDisj() {
  bench::Banner("E6c: communication vs error for Disj",
                "sub-linear communication forces error — the qualitative "
                "content of Prop. 2.5");
  const std::size_t t = 64;
  DisjDistribution dist(t);
  bench::Params("t=64, 800 trials per budget");
  TablePrinter table({"budget_bits", "error_rate"});
  Rng rng(23);
  for (const std::size_t budget : {64, 48, 32, 16, 8, 4, 2}) {
    SampledDisjProtocol protocol(budget);
    const ProtocolEvaluation eval =
        EvaluateDisjProtocol(protocol, dist, 800, rng);
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(budget));
    table.AddCell(eval.error_rate, 3);
  }
  table.Print(std::cout);
  std::cout << "# expect: error ~0 at budget = t, rising smoothly toward "
               "~1/2 of the No instances as budget -> 0\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::SimulationCost();
  streamsc::ReductionEndToEnd();
  streamsc::BudgetedDisj();
  return 0;
}
