// E2 — Theorem 1 (shape): the Ω̃(m·n^{1/α}) space threshold is real. Two
// probes: (a) sweep the element-sampling rate around the Lemma 3.12 /
// Algorithm 1 operating point and measure how often the run stays within
// its (α+ε)·õpt budget — failure probability jumps once the stored sample
// (the space) drops below the threshold; (b) report space·passes against
// the m·n^{1/α} bound for successful runs.

#include <iostream>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "offline/greedy.h"
#include "stream/set_stream.h"
#include "util/math.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void SweepSamplingBoost() {
  bench::Banner("E2a: success vs space (sampling-rate sweep)",
                "below the m*n^{1/alpha} operating point, alpha-"
                "approximation fails  [Theorem 1 + Lemma 3.12]");
  // Uniform random sets: many alternative õpt-covers of any small sample
  // exist, so an under-sampled iteration picks covers that miss a large
  // fraction of U and the cleanup pass inflates the solution past its
  // (α+ε)·õpt budget. (A planted instance would hide this: its blocks are
  // the only small cover of any sample, so the sub-solver recovers them
  // even from a handful of sampled elements.)
  const std::size_t n = 4096, m = 96, set_size = (2 * n) / 5, alpha = 3;
  const int trials = 15;
  bench::Params("n=4096 m=96 |S_i|=0.4n alpha=3 eps=0.5 trials=15 "
                "uniform-random; boost multiplies the paper's rate; "
                "opt calibrated by offline greedy");
  TablePrinter table({"boost", "mean_space_bits", "within_budget",
                      "mean_ratio", "mean_residual|U|", "success_rate"});
  for (const double boost :
       {1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1.0}) {
    int ok = 0;
    double space_sum = 0.0, ratio_sum = 0.0, residual_sum = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(1000 * trial + 17);
      const SetSystem system = UniformRandomInstance(n, m, set_size, rng);
      const std::size_t opt_guess = GreedySetCover(system).size();
      VectorSetStream stream(system);
      AssadiConfig config;
      config.alpha = alpha;
      config.epsilon = 0.5;
      config.sampling_boost = boost;
      config.ensure_feasible = true;
      config.exact_node_budget = 200'000;  // degrade to greedy quickly
      AssadiSetCover algorithm(config);
      Rng run_rng(trial + 5);
      const AssadiGuessResult result =
          algorithm.RunWithGuess(stream, opt_guess, run_rng);
      space_sum += static_cast<double>(result.peak_space_bytes) * 8.0;
      ratio_sum += static_cast<double>(result.solution.size()) /
                   static_cast<double>(opt_guess);
      residual_sum += static_cast<double>(result.residual_after_iterations);
      if (result.feasible && result.within_budget) ++ok;
    }
    table.BeginRow();
    table.AddCell(boost, 4);
    table.AddCell(space_sum / trials, 0);
    table.AddCell(std::to_string(ok) + "/" + std::to_string(trials));
    table.AddCell(ratio_sum / trials, 2);
    table.AddCell(residual_sum / trials, 0);
    table.AddCell(static_cast<double>(ok) / trials, 2);
  }
  table.Print(std::cout);
  std::cout << "# expect: at boost ~1 the ratio is ~1 and the residual "
               "universe after the alpha iterations is ~0 (Lemma 3.11); "
               "below the paper's rate the per-iteration guarantee breaks "
               "(residual grows) and the cleanup pass inflates the ratio\n";
}

void SpaceTimesPasses() {
  bench::Banner("E2b: space*passes vs the m*n^{1/alpha} bound",
                "p-pass algorithms obey p*s = Omega(m*n^{1/alpha}) "
                "[Theorem 1]");
  const std::size_t n = 8192, m = 128, opt = 4;
  bench::Params("n=8192 m=128 opt=4 eps=0.5 planted-cover");
  TablePrinter table({"alpha", "passes", "space_bits", "p*s_bits",
                      "m*n^{1/alpha}", "p*s / bound"});
  for (std::size_t alpha = 1; alpha <= 5; ++alpha) {
    Rng rng(alpha * 31);
    const SetSystem system = PlantedCoverInstance(n, m, opt, rng);
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = 0.5;
    AssadiSetCover algorithm(config);
    Rng run_rng(alpha + 77);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt, run_rng);
    const double ps = static_cast<double>(result.passes) *
                      static_cast<double>(result.peak_space_bytes) * 8.0;
    const double bound =
        static_cast<double>(m) *
        NthRoot(static_cast<double>(n), static_cast<double>(alpha));
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(alpha));
    table.AddCell(result.passes);
    table.AddCell(static_cast<double>(result.peak_space_bytes) * 8.0, 0);
    table.AddCell(ps, 0);
    table.AddCell(bound, 0);
    table.AddCell(ps / bound, 2);
  }
  table.Print(std::cout);
  std::cout << "# expect: p*s / bound >= Omega(1) (never dives toward 0): "
               "the upper bound sits above the lower bound at every alpha\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::SweepSamplingBoost();
  streamsc::SpaceTimesPasses();
  return 0;
}
