// Micro-benchmarks (google-benchmark) for the data-path primitives that
// dominate every experiment: bitset boolean algebra, popcount counting,
// Bernoulli subsampling, projections, the greedy / exact solvers, and
// D_SC sampling. These guard against performance regressions in the
// library itself.

#include <benchmark/benchmark.h>

#include "core/sampling.h"
#include "instance/generators.h"
#include "instance/hard_set_cover.h"
#include "offline/exact_set_cover.h"
#include "instance/serialization.h"
#include "offline/greedy.h"
#include "offline/lower_bounds.h"
#include "util/bitset.h"
#include "util/random.h"

namespace streamsc {
namespace {

void BM_BitsetCountAnd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const DynamicBitset a = rng.BernoulliSubset(n, 0.5);
  const DynamicBitset b = rng.BernoulliSubset(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CountAnd(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitsetCountAnd)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_BitsetUnionInPlace(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  DynamicBitset a = rng.BernoulliSubset(n, 0.5);
  const DynamicBitset b = rng.BernoulliSubset(n, 0.5);
  for (auto _ : state) {
    a |= b;
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitsetUnionInPlace)->Arg(16384)->Arg(262144);

void BM_BernoulliSubset(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.BernoulliSubset(n, 0.01));
  }
}
BENCHMARK(BM_BernoulliSubset)->Arg(16384)->Arg(262144);

void BM_SubUniverseProject(benchmark::State& state) {
  const std::size_t n = 65536;
  Rng rng(4);
  const DynamicBitset sampled =
      rng.BernoulliSubset(n, static_cast<double>(state.range(0)) / 1000.0);
  SubUniverse sub(sampled);
  const DynamicBitset set = rng.BernoulliSubset(n, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sub.Project(set));
  }
}
BENCHMARK(BM_SubUniverseProject)->Arg(10)->Arg(100);

void BM_GreedySetCover(benchmark::State& state) {
  Rng rng(5);
  const SetSystem system = PlantedCoverInstance(
      static_cast<std::size_t>(state.range(0)), 64, 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedySetCover(system));
  }
}
BENCHMARK(BM_GreedySetCover)->Arg(1024)->Arg(8192);

void BM_ExactSetCoverPlanted(benchmark::State& state) {
  Rng rng(6);
  const SetSystem system = PlantedCoverInstance(256, 24, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveExactSetCover(system));
  }
}
BENCHMARK(BM_ExactSetCoverPlanted);

void BM_HardSetCoverSample(benchmark::State& state) {
  HardSetCoverParams params;
  params.n = static_cast<std::size_t>(state.range(0));
  params.m = 32;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Sample(rng));
  }
}
BENCHMARK(BM_HardSetCoverSample)->Arg(1024)->Arg(8192);

void BM_SerializationRoundTrip(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const SetSystem system = PlantedCoverInstance(n, 64, 4, rng);
  for (auto _ : state) {
    const StatusOr<SetSystem> parsed =
        SetSystemFromString(SetSystemToString(system));
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(system.TotalIncidences()));
}
BENCHMARK(BM_SerializationRoundTrip)->Arg(1024)->Arg(8192);

void BM_PackingLowerBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const SetSystem system = UniformRandomInstance(n, 64, n / 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PackingLowerBound(system));
  }
}
BENCHMARK(BM_PackingLowerBound)->Arg(1024)->Arg(8192);

void BM_DualLowerBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  const SetSystem system = UniformRandomInstance(n, 64, n / 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DualLowerBound(system));
  }
}
BENCHMARK(BM_DualLowerBound)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace streamsc

BENCHMARK_MAIN();
