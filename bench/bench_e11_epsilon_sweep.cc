// E11 — Theorem 2's ε-dependence: the one-shot pruning threshold
// n/(ε·õpt) lets at most ε·õpt sets through, the stored projections grow
// as 1/ε, and the guess driver multiplies passes by O(log n / ε). Sweeps
// ε at fixed (n, m, α).

#include <iostream>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void EpsSweepSingleGuess() {
  bench::Banner("E11a: eps sweep (single guess, known opt)",
                "solution <= (alpha+eps)*opt; pruned sets <= eps*opt  "
                "[Lemma 3.10]");
  const std::size_t n = 8192, m = 128, opt = 4, alpha = 3;
  bench::Params("n=8192 m=128 opt=4 alpha=3 planted-cover");
  Rng gen(1);
  const SetSystem system = PlantedCoverInstance(n, m, opt, gen);
  TablePrinter table({"eps", "sets", "budget_(a+e)opt", "within", "passes",
                      "space_bits"});
  for (const double eps : {2.0, 1.0, 0.5, 0.25, 0.125}) {
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = eps;
    AssadiSetCover algorithm(config);
    Rng run_rng(static_cast<std::uint64_t>(eps * 100) + 3);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt, run_rng);
    const double budget = (static_cast<double>(alpha) + eps) * opt;
    table.BeginRow();
    table.AddCell(eps, 3);
    table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
    table.AddCell(budget, 1);
    table.AddCell(result.within_budget ? "yes" : "NO");
    table.AddCell(result.passes);
    table.AddCell(static_cast<double>(result.peak_space_bytes) * 8, 0);
  }
  table.Print(std::cout);
  std::cout << "# expect: solutions within budget at every eps; space "
               "roughly flat (eps enters via pruning, not sampling, in "
               "the single-guess core)\n";
}

void EpsSweepFullDriver() {
  bench::Banner("E11b: eps sweep (full guessing driver)",
                "passes multiply by the O(log n / eps) guess count  "
                "[Theorem 2 proof]");
  const std::size_t n = 4096, m = 64, opt = 4, alpha = 2;
  bench::Params("n=4096 m=64 opt=4 alpha=2 planted-cover");
  Rng gen(2);
  const SetSystem system = PlantedCoverInstance(n, m, opt, gen);
  TablePrinter table({"eps", "feasible", "sets", "ratio", "total_passes"});
  for (const double eps : {1.0, 0.5, 0.25}) {
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = eps;
    AssadiSetCover algorithm(config);
    const SetCoverRunResult result = algorithm.Run(stream);
    table.BeginRow();
    table.AddCell(eps, 3);
    table.AddCell(result.feasible ? "yes" : "NO");
    table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
    table.AddCell(static_cast<double>(result.solution.size()) / opt, 2);
    table.AddCell(result.stats.passes);
  }
  table.Print(std::cout);
  std::cout << "# expect: smaller eps -> finer guess grid -> more total "
               "passes, slightly better ratios\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::EpsSweepSingleGuess();
  streamsc::EpsSweepFullDriver();
  return 0;
}
