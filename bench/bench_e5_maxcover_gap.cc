// E5 — Lemma 4.3 / Claim 4.4: on D_MC the k=2 maximum coverage value is
// >= (1+Θ(ε))τ when θ = 1 and <= (1-Θ(ε))τ when θ = 0, and the optimum is
// always achieved by a matched pair (S_i, T_i). Sweeps ε and m.

#include <iostream>

#include "bench_common.h"
#include "instance/hard_max_coverage.h"
#include "offline/exact_max_coverage.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void GapSweep() {
  bench::Banner("E5a: D_MC optimum around tau",
                "theta=1 -> opt_2 > tau;  theta=0 -> opt_2 < tau  "
                "[Lemma 4.3]");
  TablePrinter table({"eps", "t1", "m", "theta", "trials", "correct_side",
                      "mean_opt/tau"});
  for (const double eps : {0.3, 0.2, 0.15, 0.1}) {
    for (const std::size_t m : {8, 16}) {
      HardMaxCoverageParams params;
      params.epsilon = eps;
      params.m = m;
      HardMaxCoverageDistribution dist(params);
      for (const int theta : {1, 0}) {
        Rng rng(static_cast<std::uint64_t>(eps * 1000) + m + theta);
        const int trials = 12;
        int correct = 0;
        double ratio_sum = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
          const HardMaxCoverageInstance inst =
              theta == 1 ? dist.SampleThetaOne(rng)
                         : dist.SampleThetaZero(rng);
          const ExactMaxCoverageResult result = SolveExactMaxCoverage(
              inst.ToSetSystem(), HardMaxCoverageInstance::kCoverageBudget);
          const double ratio =
              static_cast<double>(result.coverage) / inst.tau;
          ratio_sum += ratio;
          const bool above = ratio > 1.0;
          if (above == (theta == 1)) ++correct;
        }
        table.BeginRow();
        table.AddCell(eps, 2);
        table.AddCell(static_cast<std::uint64_t>(dist.t1()));
        table.AddCell(static_cast<std::uint64_t>(m));
        table.AddCell(theta);
        table.AddCell(trials);
        table.AddCell(correct);
        table.AddCell(ratio_sum / trials, 4);
      }
    }
  }
  table.Print(std::cout);
  std::cout << "# expect: correct_side = trials on every row; mean_opt/tau "
               "above 1 for theta=1 and below 1 for theta=0, gap ~Theta(eps)\n";
}

void OptimumIsAMatchedPair() {
  bench::Banner("E5b: the optimum is a matched pair",
                "cross/mixed pairs cover <= (3/4 + o(1)) t2 + |U1| < tau  "
                "[Claim 4.4(b)]");
  HardMaxCoverageParams params;
  params.epsilon = 0.15;
  params.m = 16;
  bench::Params("eps=0.15 m=16");
  HardMaxCoverageDistribution dist(params);
  Rng rng(5);
  const HardMaxCoverageInstance inst = dist.SampleThetaOne(rng);
  const SetSystem system = inst.ToSetSystem();
  const std::size_t m = inst.m();

  double best_matched = 0, best_cross = 0;
  for (std::size_t i = 0; i < m; ++i) {
    best_matched = std::max(
        best_matched,
        static_cast<double>((inst.s_sets[i] | inst.t_sets[i]).CountSet()));
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      best_cross = std::max(
          best_cross,
          static_cast<double>((inst.s_sets[i] | inst.t_sets[j]).CountSet()));
      best_cross = std::max(
          best_cross,
          static_cast<double>((inst.s_sets[i] | inst.s_sets[j]).CountSet()));
    }
  }
  const ExactMaxCoverageResult exact = SolveExactMaxCoverage(system, 2);
  TablePrinter table({"quantity", "value", "vs tau"});
  auto row = [&](const char* name, double v) {
    table.BeginRow();
    table.AddCell(name);
    table.AddCell(v, 1);
    table.AddCell(v / inst.tau, 4);
  };
  row("best matched pair", best_matched);
  row("best cross pair", best_cross);
  row("exact opt_2", static_cast<double>(exact.coverage));
  row("tau", inst.tau);
  table.Print(std::cout);
  std::cout << "# expect: exact opt_2 == best matched pair > tau > best "
               "cross pair\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::GapSweep();
  streamsc::OptimumIsAMatchedPair();
  return 0;
}
