// E17: dynamic instances — what a delta re-solve costs compared to a
// cold solve, and what the overlay view costs compared to a plain mmap.
//
// Every other bench treats the instance as frozen; this one measures the
// dynamic subsystem's two claims:
//
//   1. **Warm re-solve.** After a small delta (adds plus removes of sets
//      the previous solution did not choose), SolveSession keeps the
//      surviving prefix and re-covers only the residue — one subtract
//      pass instead of a full multi-pass solve. Reported per mutation
//      rate in {0.1%, 1%, 10%} of the set count: warm wall time, a
//      forced-cold (`warm=0`) wall time over the *same* composed
//      instance, and the speedup ratio (the acceptance gate wants >= 5x
//      at <= 1% mutation).
//
//   2. **Overlay read overhead.** One full pass over the composed
//      OverlaySetStream vs. the same live instance materialized to a
//      plain sscb1 mmap — the indirection tax per streamed set.
//
// Usage: bench_e17_dynamic [n] [opt] [decoys] [reps]
//   defaults: n=1000000 opt=16 decoys=240 reps=3
//   (planted block size = n/opt; m = opt + decoys; reps re-runs each
//    timed solve and keeps the minimum, the usual noise floor trick)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "api/solve_session.h"
#include "bench_common.h"
#include "dynamic/delta_log.h"
#include "dynamic/overlay_set_stream.h"
#include "instance/generators.h"
#include "instance/set_system.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "util/bitset.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

DynamicBitset RandomSet(std::size_t n, std::size_t k, Rng& rng) {
  DynamicBitset set(n);
  while (set.CountSet() < k) {
    set.Set(static_cast<std::size_t>(rng.UniformInt(n)));
  }
  return set;
}

// One full pass, touching every payload word (CountSet forces the read).
double TimedPass(SetStream& stream) {
  Stopwatch timer;
  stream.BeginPass();
  StreamItem item;
  std::uint64_t checksum = 0;
  while (stream.Next(&item)) checksum += item.set.CountSet();
  const double seconds = timer.ElapsedSeconds();
  if (checksum == 0) std::cerr << "(empty pass?)\n";
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  const std::size_t opt = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::size_t decoys =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 240;
  const int reps = argc > 4 ? std::atoi(argv[4]) : 3;
  const std::size_t m = opt + decoys;

  bench::Banner("E17",
                "a small delta re-solves warm in one subtract pass — far "
                "cheaper than the cold multi-pass solve — and the overlay "
                "view streams at near-mmap speed");
  bench::Params("n=" + std::to_string(n) + " opt=" + std::to_string(opt) +
                " decoys=" + std::to_string(decoys) +
                " reps=" + std::to_string(reps) +
                " mutation_rates={0.1%,1%,10%}");

  Rng rng(17);
  const SetSystem system = PlantedCoverInstance(n, m, opt, rng);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "streamsc_bench_e17";
  std::filesystem::create_directories(dir);
  const std::string base_path = (dir / "base.sscb1").string();
  const std::string delta_path = (dir / "delta.sscd1").string();
  if (const Status written =
          BinaryInstanceWriter::WriteSystem(system, base_path);
      !written.ok()) {
    std::cerr << "write base: " << written.ToString() << "\n";
    return 1;
  }
  {
    DeltaLogWriter writer(delta_path, n, m);
    if (const Status finished = writer.Finish(); !finished.ok()) {
      std::cerr << "init delta: " << finished.ToString() << "\n";
      return 1;
    }
  }

  const std::string solver = "assadi";
  const std::vector<std::string> args = {"alpha=2"};
  std::vector<std::string> cold_args = args;
  cold_args.push_back("warm=0");

  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(base_path, delta_path);
  if (!session.ok()) {
    std::cerr << "open overlay: " << session.status().ToString() << "\n";
    return 1;
  }
  StatusOr<SolveReport> seed_report = session->Solve(solver, args);
  if (!seed_report.ok() || !seed_report->feasible) {
    std::cerr << "seed solve failed\n";
    return 1;
  }

  const std::string instance_label =
      "planted n=" + std::to_string(n) + " opt=" + std::to_string(opt) +
      " decoys=" + std::to_string(decoys);
  bench::BenchJson json("e17");
  TablePrinter table({"mutation_rate", "mutated_sets", "warm_ms", "cold_ms",
                      "speedup", "surviving", "residue"});

  Rng mutate_rng(23);
  for (const double rate : {0.001, 0.01, 0.1}) {
    // Mutate `rate` of the set count: alternating adds and removes of
    // slots the memoized solution did not choose, so the delta is benign
    // for the prefix (the intended warm-path regime; gutted prefixes fall
    // back to cold, which the cold column already prices).
    const std::size_t mutations = std::max<std::size_t>(
        1, static_cast<std::size_t>(rate * static_cast<double>(m)));
    std::vector<bool> chosen_slot(session->overlay()->num_slots(), false);
    {
      // Re-derive the chosen slots from the most recent feasible report.
      StatusOr<SolveReport> memo_probe = session->Solve(solver, args);
      if (!memo_probe.ok()) {
        std::cerr << "probe solve: " << memo_probe.status().ToString()
                  << "\n";
        return 1;
      }
      chosen_slot.assign(session->overlay()->num_slots(), false);
      for (const SetId id : memo_probe->solution.chosen) {
        chosen_slot[session->overlay()->live_to_slot(id)] = true;
      }
    }
    {
      DeltaLogWriter writer(delta_path);
      std::size_t removed = 0;
      for (std::size_t i = 0; i < mutations; ++i) {
        if (i % 2 == 0) {
          const Status added =
              writer.AddSet(RandomSet(n, n / (4 * opt), mutate_rng));
          if (!added.ok()) {
            std::cerr << "delta add: " << added.ToString() << "\n";
            return 1;
          }
        } else {
          // Remove a live, unchosen base slot (decoys vastly outnumber
          // the solution, so a few probes always find one).
          for (int probe = 0; probe < 1000; ++probe) {
            const std::uint64_t slot = mutate_rng.UniformInt(m);
            if (chosen_slot[slot]) continue;
            const OverlaySetStream& overlay = *session->overlay();
            if (overlay.slot_to_live(slot) == kInvalidSetId) continue;
            if (!writer.RemoveSet(slot).ok()) continue;
            chosen_slot[slot] = true;  // never pick it again
            ++removed;
            break;
          }
        }
      }
      if (const Status finished = writer.Finish(); !finished.ok()) {
        std::cerr << "delta finish: " << finished.ToString() << "\n";
        return 1;
      }
      (void)removed;
    }
    if (const Status refreshed = session->RefreshDelta(); !refreshed.ok()) {
      std::cerr << "refresh: " << refreshed.ToString() << "\n";
      return 1;
    }

    // Timed warm and forced-cold solves over the same composed instance,
    // keeping the per-rep minimum. Re-running the warm solve is idempotent
    // (each run re-memoizes the same solution).
    double warm_seconds = 1e30;
    double cold_seconds = 1e30;
    std::uint64_t surviving = 0;
    std::uint64_t residue = 0;
    bool warm_taken = true;
    std::uint64_t passes = 0;
    for (int rep = 0; rep < reps; ++rep) {
      StatusOr<SolveReport> warm = session->Solve(solver, args);
      if (!warm.ok() || !warm->feasible) {
        std::cerr << "warm solve failed\n";
        return 1;
      }
      warm_seconds = std::min(warm_seconds, warm->wall_seconds);
      warm_taken = warm_taken && warm->warm_start;
      surviving = warm->surviving_prefix;
      residue = warm->residue_elements;
      passes = warm->passes;

      StatusOr<SolveReport> cold = session->Solve(solver, cold_args);
      if (!cold.ok() || !cold->feasible) {
        std::cerr << "cold solve failed\n";
        return 1;
      }
      cold_seconds = std::min(cold_seconds, cold->wall_seconds);
    }
    const double speedup = cold_seconds / warm_seconds;
    char rate_buf[16];
    std::snprintf(rate_buf, sizeof(rate_buf), "%g%%", rate * 100.0);
    const std::string rate_label = rate_buf;
    table.BeginRow();
    table.AddCell(rate_label);
    table.AddCell(static_cast<std::uint64_t>(mutations));
    table.AddCell(warm_seconds * 1e3, 3);
    table.AddCell(cold_seconds * 1e3, 3);
    table.AddCell(speedup, 1);
    table.AddCell(surviving);
    table.AddCell(residue);
    if (!warm_taken) {
      std::cerr << "note: rate " << rate_label
                << " fell back to a cold solve\n";
    }
    bench::BenchResult row;
    row.solver = solver;
    row.instance = instance_label;
    row.n = n;
    row.m = m;
    row.passes = passes;
    row.wall_seconds = warm_seconds;
    row.extras = {{"mutation_rate", rate},
                  {"mutated_sets", static_cast<double>(mutations)},
                  {"warm_ms", warm_seconds * 1e3},
                  {"cold_ms", cold_seconds * 1e3},
                  {"speedup", speedup},
                  {"surviving_prefix", static_cast<double>(surviving)},
                  {"residue_elements", static_cast<double>(residue)}};
    json.Add(std::move(row));
  }
  table.PrintWithTitle(std::cout, "warm re-solve vs cold solve");

  // ---- overlay read overhead vs plain mmap -----------------------------
  // Materialize the current live instance and stream both views.
  const std::string compacted_path = (dir / "compacted.sscb1").string();
  {
    OverlaySetStream overlay(base_path, delta_path);
    if (!overlay.status().ok() ||
        !overlay.Materialize(compacted_path).ok()) {
      std::cerr << "materialize failed\n";
      return 1;
    }
    MmapSetStream mmap_stream(compacted_path);
    if (!mmap_stream.status().ok()) {
      std::cerr << "open compacted: " << mmap_stream.status().ToString()
                << "\n";
      return 1;
    }
    double overlay_seconds = 1e30;
    double mmap_seconds = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
      overlay_seconds = std::min(overlay_seconds, TimedPass(overlay));
      mmap_seconds = std::min(mmap_seconds, TimedPass(mmap_stream));
    }
    TablePrinter pass_table({"view", "pass_ms", "overhead"});
    pass_table.BeginRow();
    pass_table.AddCell("mmap (materialized)");
    pass_table.AddCell(mmap_seconds * 1e3, 3);
    pass_table.AddCell(1.0, 2);
    pass_table.BeginRow();
    pass_table.AddCell("overlay (base+delta)");
    pass_table.AddCell(overlay_seconds * 1e3, 3);
    pass_table.AddCell(overlay_seconds / mmap_seconds, 2);
    pass_table.PrintWithTitle(std::cout, "full-pass read overhead");

    bench::BenchResult row;
    row.solver = "(pass)";
    row.instance = instance_label;
    row.n = n;
    row.m = overlay.num_sets();
    row.passes = 1;
    row.wall_seconds = overlay_seconds;
    row.extras = {{"overlay_pass_ms", overlay_seconds * 1e3},
                  {"mmap_pass_ms", mmap_seconds * 1e3},
                  {"overhead", overlay_seconds / mmap_seconds}};
    json.Add(std::move(row));
  }

  json.Write();
  std::filesystem::remove_all(dir);
  return 0;
}
