// E10 — The information-complexity machinery of Sections 2.2/3.2/4.1,
// measured empirically on tiny universes: (a) ICost of the trivial Disj
// protocol grows ~linearly in t on D^Y (Prop. 2.5's upper-bound shadow);
// (b) ICost on D^N tracks ICost on D^Y within a constant factor (the
// Lemma 3.5 / information-odometer relationship); (c) budgeted protocols
// trade information for error; (d) GHD variants (Lemma 4.1/4.2 shadow).

#include <iostream>

#include "bench_common.h"
#include "comm/protocol.h"
#include "comm/reductions.h"
#include "info/info_cost.h"
#include "info/odometer.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void DisjScalingInT() {
  bench::Banner("E10a: ICost of trivial Disj vs t",
                "information cost scales ~linearly in t  [Prop. 2.5 "
                "shadow]");
  bench::Params("plug-in estimator, 60000 samples per point, D^Y");
  TrivialDisjProtocol protocol;
  TablePrinter table({"t", "I(Pi:A|B)", "I(Pi:B|A)", "ICost", "ICost/t"});
  Rng rng(1);
  for (const std::size_t t : {2, 3, 4, 5, 6, 7}) {
    DisjDistribution dist(t);
    const InfoCostEstimate estimate = EstimateDisjInfoCost(
        protocol, dist, DisjConditioning::kYesOnly, 60000, rng);
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(t));
    table.AddCell(estimate.i_pi_x_given_y, 3);
    table.AddCell(estimate.i_pi_y_given_x, 3);
    table.AddCell(estimate.icost, 3);
    table.AddCell(estimate.icost / static_cast<double>(t), 3);
  }
  table.Print(std::cout);
  std::cout << "# expect: ICost/t roughly constant (~H(1/3) plus answer-"
               "bit effects)\n";
}

void YesVsNoConditional() {
  bench::Banner("E10b: ICost on D^Y vs D^N vs mixed",
                "the costs on Yes- and No-conditioned inputs track each "
                "other — the relationship the information odometer "
                "argument exploits  [Lemma 3.5]");
  TablePrinter table({"t", "protocol", "ICost(D^Y)", "ICost(D^N)",
                      "ICost(D)", "N/Y ratio"});
  Rng rng(2);
  for (const std::size_t t : {4, 6}) {
    DisjDistribution dist(t);
    TrivialDisjProtocol trivial;
    SampledDisjProtocol sampled(t / 2);
    struct Row {
      std::string name;
      DisjProtocol* protocol;
    };
    Row rows[] = {{"trivial", &trivial},
                  {"sampled(t/2)", &sampled}};
    for (const Row& row : rows) {
      const InfoCostEstimate yes = EstimateDisjInfoCost(
          *row.protocol, dist, DisjConditioning::kYesOnly, 50000, rng);
      const InfoCostEstimate no = EstimateDisjInfoCost(
          *row.protocol, dist, DisjConditioning::kNoOnly, 50000, rng);
      const InfoCostEstimate mixed = EstimateDisjInfoCost(
          *row.protocol, dist, DisjConditioning::kMixed, 50000, rng);
      table.BeginRow();
      table.AddCell(static_cast<std::uint64_t>(t));
      table.AddCell(row.name);
      table.AddCell(yes.icost, 3);
      table.AddCell(no.icost, 3);
      table.AddCell(mixed.icost, 3);
      table.AddCell(no.icost / std::max(yes.icost, 1e-9), 3);
    }
  }
  table.Print(std::cout);
  std::cout << "# expect: N/Y ratio = Theta(1) for protocols that solve "
               "the problem (never near 0) — the premise that lets "
               "Lemma 3.5 transfer the D^Y bound to D^N\n";
}

void InformationVsError() {
  bench::Banner("E10c: information vs error tradeoff",
                "shrinking communication shrinks information and raises "
                "error together");
  const std::size_t t = 7;
  DisjDistribution dist(t);
  bench::Params("t=7, 50000 samples per row");
  TablePrinter table({"budget_bits", "ICost(D)", "error_rate"});
  Rng rng(3);
  for (const std::size_t budget : {7, 5, 3, 1}) {
    SampledDisjProtocol protocol(budget);
    const InfoCostEstimate info = EstimateDisjInfoCost(
        protocol, dist, DisjConditioning::kMixed, 50000, rng);
    Rng eval_rng(budget);
    const ProtocolEvaluation eval =
        EvaluateDisjProtocol(protocol, dist, 2000, eval_rng);
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(budget));
    table.AddCell(info.icost, 3);
    table.AddCell(eval.error_rate, 3);
  }
  table.Print(std::cout);
}

void GhdInfoCost() {
  bench::Banner("E10d: GHD information cost",
                "GHD on the size-conditioned distribution also carries "
                "Omega(t) information in the trivial protocol  [Lemma "
                "4.1/4.2 shadow]");
  TablePrinter table({"t", "ICost(D_GHD)", "ICost(D^N_GHD)"});
  Rng rng(4);
  // Note |A| = |B| = t/2 makes the Hamming distance even, so the No
  // condition Delta <= t/2 - sqrt(t) collapses to Delta = 0 (A = B) for
  // t <= 9: there ICost(D^N) is *identically zero* because B determines
  // A. t = 16 is the first size with a non-degenerate No band; the paper
  // avoids this entirely by taking t = 1/eps^2 large.
  for (const std::size_t t : {4, 8, 16}) {
    GhdDistribution dist(t, t / 2, t / 2);
    TrivialGhdProtocol protocol(dist);
    const InfoCostEstimate mixed = EstimateGhdInfoCost(
        protocol, dist, GhdConditioning::kMixed, 50000, rng);
    const InfoCostEstimate no = EstimateGhdInfoCost(
        protocol, dist, GhdConditioning::kNoOnly, 50000, rng);
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(t));
    table.AddCell(mixed.icost, 3);
    table.AddCell(no.icost, 3);
  }
  table.Print(std::cout);
  std::cout << "# expect: the mixed column grows with t; the D^N column "
               "is exactly 0 while the No band is degenerate (t <= 9, "
               "A = B) and becomes positive at t = 16 where Delta <= "
               "t/2 - sqrt(t) first admits distinct pairs\n";
}


void OdometerDemo() {
  bench::Banner("E10e: the information odometer, executed",
                "budgeting a protocol's revealed information near its D^N "
                "cost keeps accuracy; far below it, truncation forces "
                "errors  [Lemma 3.5 / Braverman-Weinstein]");
  const std::size_t t = 6;
  DisjDistribution dist(t);
  TrivialDisjProtocol inner;
  Rng profile_rng(71);
  const OdometerProfile profile = EstimatePrefixInformation(
      inner, dist, OdometerConditioning::kMixed, 40000, profile_rng);
  Rng no_rng(72);
  const OdometerProfile no_profile = EstimatePrefixInformation(
      inner, dist, OdometerConditioning::kNoOnly, 40000, no_rng);
  const double tau = no_profile.cumulative_bits.back();  // D^N cost
  bench::Params("t=6 trivial protocol; tau = ICost(D^N) = " +
                std::to_string(tau));
  TablePrinter table({"budget (x tau)", "budget_bits", "truncated",
                      "error_rate"});
  for (const double factor : {2.0, 1.0, 0.5, 0.25, 0.0}) {
    BudgetedOdometerProtocol wrapped(&inner, profile, factor * tau);
    Rng rng(static_cast<std::uint64_t>(factor * 100) + 73);
    const ProtocolEvaluation eval =
        EvaluateDisjProtocol(wrapped, dist, 400, rng);
    table.BeginRow();
    table.AddCell(factor, 2);
    table.AddCell(factor * tau, 2);
    table.AddCell(wrapped.truncations());
    table.AddCell(eval.error_rate, 3);
  }
  table.Print(std::cout);
  std::cout << "# expect: no truncations (and no errors) while the budget "
               "covers the profile; once it drops below the first "
               "message's information, every run truncates and the error "
               "jumps to the Yes-mass ~1/2 — the dichotomy the Lemma 3.5 "
               "argument exploits\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::DisjScalingInT();
  streamsc::YesVsNoConditional();
  streamsc::InformationVsError();
  streamsc::GhdInfoCost();
  streamsc::OdometerDemo();
  return 0;
}
