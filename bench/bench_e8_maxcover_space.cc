// E8 — Result 2 (upper side, [9,42]-style algorithms): (1-ε)-approximate
// streaming maximum coverage with space of the m/ε² shape, matching the
// Ω̃(m/ε²) lower bound. Sweeps ε and m, reports space and achieved
// accuracy vs the exact optimum, plus the sieve baseline.

#include <iostream>

#include "bench_common.h"
#include "core/max_coverage.h"
#include "instance/generators.h"
#include "instance/hard_max_coverage.h"
#include "offline/exact_max_coverage.h"
#include "stream/set_stream.h"
#include "util/math.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void EpsilonSweep() {
  bench::Banner("E8a: space and accuracy vs eps",
                "space ~ m*k*log(m)/eps^2; coverage >= (1-O(eps))*opt  "
                "[Result 2 upper bound]");
  const std::size_t n = 32768, m = 128, k = 2;
  bench::Params("n=32768 m=128 k=2 uniform sets of n/4");
  Rng rng(1);
  const SetSystem system = UniformRandomInstance(n, m, n / 4, rng);
  const ExactMaxCoverageResult exact = SolveExactMaxCoverage(system, k);
  TablePrinter table({"eps", "space_bits", "m*lnm/eps^2", "bits/pred",
                      "coverage", "opt", "cov/opt"});
  for (const double eps : {0.4, 0.2, 0.1, 0.05}) {
    VectorSetStream stream(system);
    ElementSamplingMcConfig config;
    config.epsilon = eps;
    config.seed = static_cast<std::uint64_t>(1000 * eps);
    ElementSamplingMaxCoverage algorithm(config);
    const MaxCoverageRunResult result = algorithm.Run(stream, k);
    const double bits = static_cast<double>(result.stats.peak_space_bytes) * 8;
    const double pred = static_cast<double>(m) *
                        SafeLog(static_cast<double>(m)) / (eps * eps);
    table.BeginRow();
    table.AddCell(eps, 2);
    table.AddCell(bits, 0);
    table.AddCell(pred, 0);
    table.AddCell(bits / pred, 3);
    table.AddCell(result.coverage);
    table.AddCell(exact.coverage);
    table.AddCell(static_cast<double>(result.coverage) /
                      static_cast<double>(exact.coverage),
                  4);
  }
  table.Print(std::cout);
  std::cout << "# expect: bits/pred roughly flat (1/eps^2 shape); cov/opt "
               ">= 1 - O(eps) on every row\n";
}

void MSweep() {
  bench::Banner("E8b: space vs m", "space linear in m  [Result 2]");
  const std::size_t n = 16384, k = 2;
  const double eps = 0.1;
  bench::Params("n=16384 k=2 eps=0.1");
  TablePrinter table({"m", "space_bits", "bits/m"});
  for (const std::size_t m : {32, 64, 128, 256, 512}) {
    Rng rng(m);
    const SetSystem system = UniformRandomInstance(n, m, n / 4, rng);
    VectorSetStream stream(system);
    ElementSamplingMcConfig config;
    config.epsilon = eps;
    ElementSamplingMaxCoverage algorithm(config);
    const MaxCoverageRunResult result = algorithm.Run(stream, k);
    const double bits = static_cast<double>(result.stats.peak_space_bytes) * 8;
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(m));
    table.AddCell(bits, 0);
    table.AddCell(bits / static_cast<double>(m), 1);
  }
  table.Print(std::cout);
}

void HardDistribution() {
  bench::Banner("E8c: separating theta on D_MC with the sketch",
                "the (1-eps)-approx sketch determines theta, i.e. solves "
                "the embedded GHD instance  [Theorem 4 engine]");
  HardMaxCoverageParams params;
  params.epsilon = 0.2;
  params.m = 16;
  bench::Params("D_MC eps=0.2 m=16; sketch eps'=0.05; 20 trials/side");
  HardMaxCoverageDistribution dist(params);
  TablePrinter table({"theta", "trials", "correct", "mean_value/tau"});
  for (const int theta : {1, 0}) {
    Rng rng(40 + theta);
    const int trials = 20;
    int correct = 0;
    double ratio = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      const HardMaxCoverageInstance inst =
          theta == 1 ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
      const SetSystem system = inst.ToSetSystem();
      VectorSetStream stream(system);
      ElementSamplingMcConfig config;
      config.epsilon = 0.05;
      config.seed = 500 + trial;
      ElementSamplingMaxCoverage algorithm(config);
      const MaxCoverageRunResult result = algorithm.Run(stream, 2);
      const double r = static_cast<double>(result.coverage) / inst.tau;
      ratio += r;
      if ((r > 1.0) == (theta == 1)) ++correct;
    }
    table.BeginRow();
    table.AddCell(theta);
    table.AddCell(trials);
    table.AddCell(correct);
    table.AddCell(ratio / trials, 4);
  }
  table.Print(std::cout);
}

void SieveBaseline() {
  bench::Banner("E8d: sieve baseline",
                "constant-factor single-pass sieve: smaller guarantees, "
                "k*n-bit state per guess");
  const std::size_t n = 16384, m = 128, k = 3;
  Rng rng(9);
  const SetSystem system = UniformRandomInstance(n, m, n / 4, rng);
  const ExactMaxCoverageResult exact = SolveExactMaxCoverage(system, k);
  TablePrinter table({"algorithm", "space_bits", "coverage", "cov/opt"});
  {
    VectorSetStream stream(system);
    SieveMaxCoverage sieve(SieveMcConfig{0.1});
    const MaxCoverageRunResult result = sieve.Run(stream, k);
    table.BeginRow();
    table.AddCell("sieve(eps=0.1)");
    table.AddCell(static_cast<double>(result.stats.peak_space_bytes) * 8, 0);
    table.AddCell(result.coverage);
    table.AddCell(static_cast<double>(result.coverage) /
                      static_cast<double>(exact.coverage),
                  4);
  }
  {
    VectorSetStream stream(system);
    ElementSamplingMcConfig config;
    config.epsilon = 0.1;
    ElementSamplingMaxCoverage es(config);
    const MaxCoverageRunResult result = es.Run(stream, k);
    table.BeginRow();
    table.AddCell("element-sampling(eps=0.1)");
    table.AddCell(static_cast<double>(result.stats.peak_space_bytes) * 8, 0);
    table.AddCell(result.coverage);
    table.AddCell(static_cast<double>(result.coverage) /
                      static_cast<double>(exact.coverage),
                  4);
  }
  table.Print(std::cout);
  return;
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::EpsilonSweep();
  streamsc::MSweep();
  streamsc::HardDistribution();
  streamsc::SieveBaseline();
  return 0;
}
