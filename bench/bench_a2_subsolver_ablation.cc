// A2 — Sub-solver ablation. Algorithm 1 step 3(c) requires an *optimal*
// cover of the stored sub-instance; the streaming model permits this
// because computation is free and only space is charged. This bench flips
// the sub-solver to plain greedy and measures what optimality buys:
// (a) guess acceptance — with the exact solver, a guess õpt < opt is
// *proven* infeasible and rejected; greedy cannot prove anything and the
// driver must over-shoot; (b) solution size on needle instances where
// greedy famously picks the big deceptive set.

#include <iostream>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

AssadiConfig MakeConfig(bool exact) {
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  config.use_exact_subsolver = exact;
  config.seed = 9;
  return config;
}

void SolutionQuality() {
  bench::Banner("A2a: exact vs greedy sub-solver, solution size",
                "the optimal sub-solve keeps the per-iteration pick at "
                "õpt sets; greedy can lose a ln factor  [Alg. 1 step 3c]");
  bench::Params("alpha=2 eps=0.5; needle + planted instances, 8 trials");
  TablePrinter table({"instance", "subsolver", "mean_sets", "mean_ratio",
                      "feasible"});
  struct Family {
    std::string name;
    std::size_t opt;
  };
  for (const Family& family :
       {Family{"needles(n=2048,m=64,k=6)", 6},
        Family{"planted(n=2048,m=64,opt=6)", 6}}) {
    for (const bool exact : {true, false}) {
      double sets_sum = 0.0;
      int feasible = 0;
      const int trials = 8;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(100 * trial + 7);
        const SetSystem system =
            family.name[0] == 'n'
                ? NeedleInstance(2048, 64, family.opt, rng)
                : PlantedCoverInstance(2048, 64, family.opt, rng);
        VectorSetStream stream(system);
        AssadiSetCover algorithm(MakeConfig(exact));
        const SetCoverRunResult result = algorithm.Run(stream);
        if (result.feasible) ++feasible;
        sets_sum += static_cast<double>(result.solution.size());
      }
      table.BeginRow();
      table.AddCell(family.name);
      table.AddCell(exact ? "exact" : "greedy");
      table.AddCell(sets_sum / trials, 2);
      table.AddCell(sets_sum / trials / static_cast<double>(family.opt), 2);
      table.AddCell(std::to_string(feasible) + "/" + std::to_string(trials));
    }
  }
  table.Print(std::cout);
  std::cout << "# expect: exact <= greedy mean sets on both families, with "
               "the gap largest on needles\n";
}

void GuessRejection() {
  bench::Banner("A2b: guess rejection power",
                "the exact sub-solver *proves* õpt < opt and rejects the "
                "guess; greedy cannot certify and wastes budget");
  bench::Params("planted(n=1024,m=48,opt=6), guesses 1..6, alpha=2");
  Rng rng(5);
  const SetSystem system = PlantedCoverInstance(1024, 48, 6, rng);
  TablePrinter table({"guess", "exact: accepted", "greedy: accepted"});
  for (std::size_t guess = 1; guess <= 6; ++guess) {
    bool accepted[2] = {false, false};
    for (const bool exact : {true, false}) {
      VectorSetStream stream(system);
      AssadiSetCover algorithm(MakeConfig(exact));
      Rng run_rng(guess * 13 + (exact ? 1 : 0));
      const AssadiGuessResult result =
          algorithm.RunWithGuess(stream, guess, run_rng);
      accepted[exact ? 0 : 1] = result.feasible && result.within_budget;
    }
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(guess));
    table.AddCell(accepted[0] ? "yes" : "no");
    table.AddCell(accepted[1] ? "yes" : "no");
  }
  table.Print(std::cout);
  std::cout << "# expect: both reject tiny guesses; the exact column flips "
               "to yes exactly at guess = opt = 6 (earlier acceptances for "
               "greedy would mean its budget absorbed the ln-factor loss)\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::SolutionQuality();
  streamsc::GuessRejection();
  return 0;
}
