#ifndef STREAMSC_BENCH_BENCH_COMMON_H_
#define STREAMSC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <iostream>
#include <string>

/// \file bench_common.h
/// Shared scaffolding for the experiment binaries. Each bench regenerates
/// one DESIGN.md experiment (E1..E12) as self-describing tables; see
/// EXPERIMENTS.md for the paper-claim-vs-measured record.

namespace streamsc::bench {

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& claim) {
  std::cout << "\n########################################################\n"
            << "# " << id << "\n"
            << "# claim: " << claim << "\n"
            << "########################################################\n";
}

/// Prints a "parameters" line so every table is reproducible standalone.
inline void Params(const std::string& text) {
  std::cout << "# params: " << text << "\n";
}

}  // namespace streamsc::bench

#endif  // STREAMSC_BENCH_BENCH_COMMON_H_
