#ifndef STREAMSC_BENCH_BENCH_COMMON_H_
#define STREAMSC_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

/// \file bench_common.h
/// Shared scaffolding for the experiment binaries. Each bench regenerates
/// one DESIGN.md experiment (E1..E12) as self-describing tables; see
/// EXPERIMENTS.md for the paper-claim-vs-measured record.
///
/// Besides the human-readable tables, benches can accumulate BenchResult
/// rows into a BenchJson sink, which writes a machine-readable
/// `BENCH_<id>.json` sidecar (one array of flat objects) into the working
/// directory — the shape CI trend tooling and notebooks consume without
/// scraping stdout tables.

namespace streamsc::bench {

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& claim) {
  std::cout << "\n########################################################\n"
            << "# " << id << "\n"
            << "# claim: " << claim << "\n"
            << "########################################################\n";
}

/// Prints a "parameters" line so every table is reproducible standalone.
inline void Params(const std::string& text) {
  std::cout << "# params: " << text << "\n";
}

/// One machine-readable result row: the invariants every experiment
/// reports regardless of its table shape (who ran, on what, how wide,
/// and the pass/space/wall outcome).
struct BenchResult {
  std::string solver;    ///< Registry key or contender label.
  std::string instance;  ///< Instance identifier ("planted n=8192 ...").
  std::size_t n = 0;     ///< Universe size.
  std::size_t m = 0;     ///< Number of sets.
  std::size_t threads = 1;            ///< Engine width of the run.
  std::uint64_t passes = 0;           ///< Stream passes consumed.
  std::uint64_t peak_space_bytes = 0; ///< Peak logical space (SpaceMeter).
  double wall_seconds = 0.0;          ///< Wall-clock time of the run.
  /// Experiment-specific numeric columns appended verbatim to the JSON
  /// row (e.g. E16's requests_per_sec / p99_ms). Empty for benches that
  /// only report the shared invariants, so their sidecars are unchanged.
  std::vector<std::pair<std::string, double>> extras;
};

/// Accumulates BenchResult rows and writes them as `BENCH_<id>.json`.
/// Collection is cheap and allocation at write time only — benches stay
/// table-first, the sidecar is a byproduct.
class BenchJson {
 public:
  explicit BenchJson(std::string id) : id_(std::move(id)) {}

  void Add(BenchResult row) { rows_.push_back(std::move(row)); }

  /// Writes `BENCH_<id>.json` into the working directory. Returns false
  /// (and says so on stderr) if the file cannot be written; benches
  /// treat that as a warning, not a failure — the tables already went to
  /// stdout.
  bool Write() const {
    const std::string path = "BENCH_" + id_ + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "# bench json: cannot open " << path << " for writing\n";
      return false;
    }
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const BenchResult& r = rows_[i];
      out << "  {\"solver\": \"" << Escaped(r.solver)
          << "\", \"instance\": \"" << Escaped(r.instance)
          << "\", \"n\": " << r.n << ", \"m\": " << r.m
          << ", \"threads\": " << r.threads << ", \"passes\": " << r.passes
          << ", \"peak_space_bytes\": " << r.peak_space_bytes
          << ", \"wall_seconds\": " << r.wall_seconds;
      for (const auto& [key, value] : r.extras) {
        out << ", \"" << Escaped(key) << "\": " << value;
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    if (!out.flush()) {
      std::cerr << "# bench json: write to " << path << " failed\n";
      return false;
    }
    std::cout << "# wrote " << rows_.size() << " result rows to " << path
              << "\n";
    return true;
  }

 private:
  // Labels are plain ASCII by construction; escape the JSON specials
  // anyway so a future label cannot corrupt the sidecar.
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control
      out.push_back(c);
    }
    return out;
  }

  std::string id_;
  std::vector<BenchResult> rows_;
};

}  // namespace streamsc::bench

#endif  // STREAMSC_BENCH_BENCH_COMMON_H_
