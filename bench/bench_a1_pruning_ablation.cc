// A1 — Pruning ablation. Algorithm 1's first refinement over Har-Peled et
// al. is *one-shot* pruning (a single absolute threshold n/(ε·õpt) before
// the iterations) in place of *iterative* pruning (a relative threshold
// |U|/(2·õpt) inside every iteration). This bench isolates the two
// policies on instance families with different largest-set profiles and
// reports how many sets each policy takes, the pass cost, and the quality
// of what remains for the sampling stage.
//
// The instances:
//   block-heavy  — planted covers: the optimum consists of big sets, the
//                  regime pruning is designed for;
//   flat         — uniform sets far below every pruning threshold: pruning
//                  should be a no-op and all work falls to sampling;
//   mixed        — a planted core plus a uniform tail: one-shot pruning
//                  takes the core in one pass, iterative pruning re-scans.

#include <iostream>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "core/har_peled_set_cover.h"
#include "instance/generators.h"
#include "offline/greedy.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

SetSystem MixedInstance(std::size_t n, Rng& rng) {
  // A 4-block planted core covering [0, n/2) plus 48 uniform tail sets of
  // size n/40 over the full universe plus one patch for feasibility.
  SetSystem system(n);
  const std::size_t half = n / 2;
  for (std::size_t b = 0; b < 4; ++b) {
    DynamicBitset block(n);
    for (std::size_t e = b; e < half; e += 4) block.Set(e);
    system.AddSet(std::move(block));
  }
  for (int i = 0; i < 48; ++i) {
    system.AddSet(rng.RandomSubsetOfSize(n, n / 40));
  }
  DynamicBitset patch = system.UnionAll();
  patch.Complement();
  system.AddSet(std::move(patch));
  return system;
}

void RunFamily(const std::string& family, const SetSystem& system,
               std::size_t opt_guess, TablePrinter& table) {
  // One-shot (Assadi) vs iterative (Har-Peled) at alpha = 3.
  {
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = 3;
    config.epsilon = 0.5;
    AssadiSetCover algorithm(config);
    Rng rng(11);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt_guess, rng);
    table.BeginRow();
    table.AddCell(family);
    table.AddCell("one-shot (Assadi)");
    table.AddCell(result.passes);
    table.AddCell(static_cast<double>(result.peak_space_bytes) * 8.0, 0);
    table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
    table.AddCell(result.feasible ? "yes" : "NO");
  }
  {
    VectorSetStream stream(system);
    HarPeledConfig config;
    config.alpha = 3;
    HarPeledSetCover algorithm(config);
    Rng rng(12);
    const SetCoverRunResult result =
        algorithm.RunWithGuess(stream, opt_guess, rng);
    table.BeginRow();
    table.AddCell(family);
    table.AddCell("iterative (Har-Peled)");
    table.AddCell(result.stats.passes);
    table.AddCell(static_cast<double>(result.stats.peak_space_bytes) * 8.0,
                  0);
    table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
    table.AddCell(result.feasible ? "yes" : "NO");
  }
}

void PruningAblation() {
  bench::Banner("A1: one-shot vs iterative pruning",
                "one-shot pruning pays one pass regardless of alpha; "
                "iterative pruning re-scans every iteration  [Sec 3.4]");
  bench::Params("alpha=3 eps=0.5; opt_guess calibrated per family");
  TablePrinter table({"family", "pruning", "passes", "space_bits", "sets",
                      "feasible"});
  {
    Rng rng(1);
    const SetSystem system = PlantedCoverInstance(8192, 96, 4, rng);
    RunFamily("block-heavy", system, 4, table);
  }
  {
    Rng rng(2);
    const SetSystem system = UniformRandomInstance(4096, 96, 160, rng);
    const std::size_t opt_guess = GreedySetCover(system).size();
    RunFamily("flat", system, opt_guess, table);
  }
  {
    Rng rng(3);
    const SetSystem system = MixedInstance(8192, rng);
    const std::size_t opt_guess = GreedySetCover(system).size();
    RunFamily("mixed", system, opt_guess, table);
  }
  table.Print(std::cout);
  std::cout
      << "# expect: on block-heavy the *relative* iterative threshold "
         "|U|/(2*opt) takes the whole optimum in one pass and wins outright "
         "— the regime pruning exists for; the one-shot absolute threshold "
         "n/(eps*opt) is stricter, so Assadi pays the sampling stage there. "
         "On flat/mixed instances the pass counts equalize, and the "
         "relative threshold keeps absorbing medium sets that the absolute "
         "threshold leaves to the (space-charged) sampling stage. "
         "One-shot's guarantee is about the *worst case*: it bounds "
         "pruning to one pass and <= eps*opt picked sets on every "
         "instance, instead of per-iteration rescans whose pick count "
         "relative pruning does not cap — see the E1/E7 space tables for "
         "where the sharper sampling exponent then pays off\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::PruningAblation();
  return 0;
}
