// E4 — Lemma 2.2: k independent uniform (n-s)-subsets leave at least
// (|U|/2)·(s/2n)^k elements of U uncovered, except with probability
// 2·exp(-(|U|/8)(s/2n)^k). The bench sweeps (s, k) and compares the
// empirical uncovered count with both the lemma's floor and the exact
// expectation |U|·(s/n)^k.

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "util/math.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void Concentration() {
  bench::Banner("E4: coverage concentration of random sets",
                "uncovered >= (|U|/2)(s/2n)^k w.h.p.  [Lemma 2.2]");
  const std::size_t n = 65536;
  const int trials = 40;
  bench::Params("n=65536 U=[n] trials=40");
  TablePrinter table({"s/n", "k", "mean_uncovered", "expectation n(s/n)^k",
                      "lemma_floor n/2(s/2n)^k", "min_uncovered",
                      "violations"});
  for (const double s_frac : {0.5, 0.25, 0.125}) {
    const std::size_t s = static_cast<std::size_t>(s_frac * n);
    for (const std::size_t k : {1, 2, 3, 4}) {
      Rng rng(static_cast<std::uint64_t>(s * 131 + k));
      double sum = 0.0, min_uncovered = 1e18;
      int violations = 0;
      const double floor_bound =
          (static_cast<double>(n) / 2.0) *
          std::pow(static_cast<double>(s) / (2.0 * n),
                   static_cast<double>(k));
      for (int trial = 0; trial < trials; ++trial) {
        DynamicBitset covered(n);
        for (std::size_t i = 0; i < k; ++i) {
          covered |= rng.RandomSubsetOfSize(n, n - s);
        }
        const double uncovered =
            static_cast<double>(n) - static_cast<double>(covered.CountSet());
        sum += uncovered;
        min_uncovered = std::min(min_uncovered, uncovered);
        if (uncovered < floor_bound) ++violations;
      }
      const double expectation =
          static_cast<double>(n) *
          std::pow(s_frac, static_cast<double>(k));
      table.BeginRow();
      table.AddCell(s_frac, 3);
      table.AddCell(static_cast<std::uint64_t>(k));
      table.AddCell(sum / trials, 1);
      table.AddCell(expectation, 1);
      table.AddCell(floor_bound, 1);
      table.AddCell(min_uncovered, 1);
      table.AddCell(violations);
    }
  }
  table.Print(std::cout);
  std::cout << "# expect: mean tracks n(s/n)^k; violations = 0 (the lemma "
               "floor is ~2^k below the mean)\n";
}

void CouplingSide() {
  bench::Banner("E4b: D vs D' coupling",
                "Bernoulli(s/2n)-removal sets dominate: fixed-size "
                "(n-s)-subsets cover at least as much  [Lemma 2.2 proof]");
  const std::size_t n = 16384, s = n / 4, k = 3;
  const int trials = 40;
  bench::Params("n=16384 s=n/4 k=3 trials=40");
  Rng rng(7);
  double fixed_sum = 0.0, bernoulli_sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    DynamicBitset covered_fixed(n), covered_bernoulli(n);
    for (std::size_t i = 0; i < k; ++i) {
      covered_fixed |= rng.RandomSubsetOfSize(n, n - s);
      // D': drop each element w.p. s/2n (so sets are *larger* on average).
      DynamicBitset d_prime = rng.BernoulliSubset(
          n, 1.0 - static_cast<double>(s) / (2.0 * n));
      covered_bernoulli |= d_prime;
    }
    fixed_sum += static_cast<double>(n - covered_fixed.CountSet());
    bernoulli_sum += static_cast<double>(n - covered_bernoulli.CountSet());
  }
  TablePrinter table({"distribution", "mean_uncovered"});
  table.BeginRow();
  table.AddCell("D  (exact (n-s)-subsets)");
  table.AddCell(fixed_sum / trials, 1);
  table.BeginRow();
  table.AddCell("D' (Bernoulli s/2n removal)");
  table.AddCell(bernoulli_sum / trials, 1);
  table.Print(std::cout);
  std::cout << "# expect: D leaves ~2^k x more uncovered than D' "
               "(the proof's one-sided coupling direction)\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::Concentration();
  streamsc::CouplingSide();
  return 0;
}
