// E14: the on-disk instance store — MmapSetStream vs FileSetStream vs
// in-memory on a multi-pass solve.
//
// The streaming model is only honest at scale when the instance does not
// fit in memory; this bench measures what each disk path costs there:
//
//   memory  VectorSetStream over a materialized SetSystem (upper bound:
//           what the paths below give up by leaving RAM);
//   file    FileSetStream re-parsing the ssc1 text every pass, one dense
//           set resident at a time (the seed's only disk path);
//   mmap    MmapSetStream serving zero-copy SetViews over the sscb1
//           binary store — no per-pass parse, ItemsRemainValid() == true,
//           so the ParallelPassEngine can shard disk-resident passes.
//
// Three measurements per source:
//
//   drain   P passes of read-everything (CountSet over every item): the
//           pure pass cost with no solver work;
//   assadi  the full multi-pass Assadi run (known õpt, greedy
//           sub-solver) with a thread sweep {1,2,8};
//   tgreedy multi-pass threshold greedy (β = 8), same sweep.
//
// The planted opt defaults to 8 so the Lemma 3.12 sampling rate stays
// below 1 at n = 1e6 (16·õpt·ln m < n^{1/α}·√n): that is the regime where
// Assadi's per-pass cost — not the offline sub-solve — dominates, i.e.
// exactly where the storage layer matters. The resulting sets are dense
// (n/8 elements), so this also exercises the sscb1 dense-words payloads;
// drain covers the sparse-payload path implicitly via the index checksum.
//
// Acceptance gates (defaults, n = 1e6):
//   [1] mmap >= 10x faster than file on the multi-pass Assadi solve;
//   [2] Assadi and threshold-greedy solutions byte-identical across
//       {memory, file, mmap} x {1, 2, 8} threads.
//
// Usage: bench_e14_disk [n] [opt] [decoys] [drain_passes]
//   defaults: n=1000000 opt=8 decoys=24 drain_passes=3
//   (planted block size = n/opt; m = opt + decoys)

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "core/threshold_greedy.h"
#include "instance/serialization.h"
#include "instance/set_system.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "stream/parallel_pass_engine.h"
#include "stream/set_stream.h"
#include "stream/stream_adapters.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

// A coverable planted instance: a partition into n/block blocks plus
// `decoys` random block-sized subsets (the e13 scale-family shape). With
// the default opt=8 the blocks are dense (n/8 elements each); pass a
// larger opt for the sparse-payload variant.
SetSystem PlantedBlocks(std::size_t n, std::size_t block, std::size_t decoys,
                        Rng& rng) {
  SetSystem system(n);
  for (std::size_t lo = 0; lo < n; lo += block) {
    std::vector<ElementId> members;
    for (std::size_t e = lo; e < std::min(lo + block, n); ++e) {
      members.push_back(static_cast<ElementId>(e));
    }
    system.AddSetFromIndices(members);
  }
  for (std::size_t d = 0; d < decoys; ++d) {
    system.AddSetFromIndices(rng.RandomSubsetOfSize(n, block).ToIndices());
  }
  return system;
}

// P read-everything passes; returns total ms and folds per-item counts
// into a checksum so the reads cannot be optimized away.
double DrainMs(SetStream& stream, int passes, Count* checksum) {
  Stopwatch timer;
  StreamItem item;
  for (int p = 0; p < passes; ++p) {
    stream.BeginPass();
    while (stream.Next(&item)) *checksum += item.set.CountSet();
  }
  return timer.ElapsedMillis();
}

struct SolveOutcome {
  ArenaVector<SetId> solution;
  std::uint64_t passes = 0;
  double millis = 0.0;
  bool feasible = false;
};

SolveOutcome Run(StreamingSetCoverAlgorithm& algorithm, SetStream& stream,
                 ParallelPassEngine* engine) {
  Stopwatch timer;
  RunContext context;
  context.engine = engine;
  const SetCoverRunResult result = algorithm.Run(stream, context);
  SolveOutcome out;
  out.millis = timer.ElapsedMillis();
  out.solution = result.solution.chosen;
  out.passes = result.stats.passes;
  out.feasible = result.feasible;
  return out;
}

SolveOutcome SolveAssadi(SetStream& stream, std::size_t known_opt,
                         ParallelPassEngine* engine) {
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  config.seed = 11;
  config.known_opt = known_opt;
  // Greedy sub-solver: deterministic and fast at this sub-instance size,
  // so the timing isolates the streaming path, not branch-and-bound luck.
  config.use_exact_subsolver = false;
  AssadiSetCover algorithm(config);
  return Run(algorithm, stream, engine);
}

SolveOutcome SolveThresholdGreedy(SetStream& stream,
                                  ParallelPassEngine* engine) {
  ThresholdGreedyConfig config;
  config.beta = 8.0;  // fewer, fatter passes; still genuinely multi-pass
  ThresholdGreedySetCover algorithm(config);
  return Run(algorithm, stream, engine);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  const std::size_t opt = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::size_t decoys =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 24;
  const int drain_passes =
      argc > 4 ? static_cast<int>(std::strtoull(argv[4], nullptr, 10)) : 3;
  const std::size_t block = (n + opt - 1) / opt;

  bench::Banner("E14-disk",
                "mmap-backed sscb1 store: >=10x over text re-parse on a "
                "multi-pass solve, byte-identical solutions across "
                "{memory,file,mmap} x {1,2,8} threads");
  bench::Params("n=" + std::to_string(n) + " block=" + std::to_string(block) +
                " opt=" + std::to_string(opt) +
                " decoys=" + std::to_string(decoys) +
                " drain_passes=" + std::to_string(drain_passes));

  Rng rng(7);
  const SetSystem system = PlantedBlocks(n, block, decoys, rng);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "streamsc_bench_e14";
  std::filesystem::create_directories(dir);
  const std::string text_path = (dir / "instance.ssc").string();
  const std::string binary_path = (dir / "instance.sscb1").string();

  Stopwatch timer;
  if (!SaveSetSystem(system, text_path).ok()) {
    std::cerr << "cannot write " << text_path << "\n";
    return 1;
  }
  const double save_text_ms = timer.ElapsedMillis();
  timer.Restart();
  if (!BinaryInstanceWriter::TranscodeText(text_path, binary_path).ok()) {
    std::cerr << "cannot transcode to " << binary_path << "\n";
    return 1;
  }
  const double transcode_ms = timer.ElapsedMillis();
  std::cout << "# instance: m=" << system.num_sets() << " opt=" << opt
            << " text=" << HumanBytes(std::filesystem::file_size(text_path))
            << " (" << static_cast<int>(save_text_ms) << " ms) binary="
            << HumanBytes(std::filesystem::file_size(binary_path)) << " ("
            << static_cast<int>(transcode_ms) << " ms transcode)\n";

  // --- Drain: pure pass cost. -------------------------------------------
  TablePrinter drain_table({"source", "passes", "total_ms", "ms_per_pass",
                            "speedup_vs_file"});
  Count checksum_memory = 0, checksum_file = 0, checksum_mmap = 0;
  double drain_memory_ms = 0.0, drain_file_ms = 0.0, drain_mmap_ms = 0.0;
  {
    VectorSetStream stream(system);
    drain_memory_ms = DrainMs(stream, drain_passes, &checksum_memory);
  }
  {
    FileSetStream stream(text_path);
    if (!stream.status().ok()) {
      std::cerr << "file stream failed: " << stream.status().ToString()
                << "\n";
      return 1;
    }
    drain_file_ms = DrainMs(stream, drain_passes, &checksum_file);
  }
  {
    MmapSetStream stream(binary_path);
    if (!stream.status().ok()) {
      std::cerr << "mmap stream failed: " << stream.status().ToString()
                << "\n";
      return 1;
    }
    drain_mmap_ms = DrainMs(stream, drain_passes, &checksum_mmap);
  }
  const bool checksums_ok =
      checksum_memory == checksum_file && checksum_file == checksum_mmap;
  const auto add_drain = [&](const std::string& name, double ms) {
    drain_table.BeginRow();
    drain_table.AddCell(name);
    drain_table.AddCell(static_cast<std::uint64_t>(drain_passes));
    drain_table.AddCell(ms, 1);
    drain_table.AddCell(ms / drain_passes, 2);
    drain_table.AddCell(drain_file_ms / std::max(1e-9, ms), 1);
  };
  add_drain("memory", drain_memory_ms);
  add_drain("file (ssc1 re-parse)", drain_file_ms);
  add_drain("mmap (sscb1)", drain_mmap_ms);
  drain_table.PrintWithTitle(std::cout, "drain: read every item, no solver");

  // --- Solve: multi-pass Assadi and threshold greedy. -------------------
  bool identical_ok = true;
  bool feasible_ok = true;

  // Runs one algorithm over {file x 1} + {memory, mmap} x {1,2,8},
  // checking solution identity; returns {file_ms, mmap_1t_ms}.
  const auto sweep = [&](const std::string& title, const auto& solve) {
    TablePrinter solve_table({"source", "threads", "sets", "passes", "ms",
                              "speedup_vs_file"});
    ArenaVector<SetId> reference;
    bool have_reference = false;
    double file_ms = 0.0, mmap_1t_ms = 0.0;

    const auto record = [&](const std::string& name, std::size_t threads,
                            const SolveOutcome& outcome) {
      if (!have_reference) {
        reference = outcome.solution;
        have_reference = true;
      } else if (outcome.solution != reference) {
        identical_ok = false;
      }
      feasible_ok = feasible_ok && outcome.feasible;
      solve_table.BeginRow();
      solve_table.AddCell(name);
      solve_table.AddCell(static_cast<std::uint64_t>(threads));
      solve_table.AddCell(static_cast<std::uint64_t>(outcome.solution.size()));
      solve_table.AddCell(outcome.passes);
      solve_table.AddCell(outcome.millis, 1);
      solve_table.AddCell(file_ms / std::max(1e-9, outcome.millis), 1);
    };

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      std::optional<ParallelPassEngine> engine;
      if (threads > 1) engine.emplace(threads);
      {
        // FileSetStream cannot buffer a pass, so the engine degrades to
        // the sequential path — included in the sweep anyway to prove the
        // solution stays identical.
        FileSetStream stream(text_path);
        const SolveOutcome outcome =
            solve(stream, engine ? &*engine : nullptr);
        if (threads == 1) file_ms = outcome.millis;
        record("file (ssc1 re-parse)", threads, outcome);
      }
      {
        VectorSetStream stream(system);
        record("memory", threads, solve(stream, engine ? &*engine : nullptr));
      }
      {
        MmapSetStream stream(binary_path);
        const SolveOutcome outcome =
            solve(stream, engine ? &*engine : nullptr);
        if (threads == 1) mmap_1t_ms = outcome.millis;
        record("mmap (sscb1)", threads, outcome);
      }
    }
    solve_table.PrintWithTitle(std::cout, title);
    return std::pair<double, double>(file_ms, mmap_1t_ms);
  };

  const auto [assadi_file_ms, assadi_mmap_ms] = sweep(
      "solve: multi-pass Assadi, known opt",
      [&](SetStream& stream, ParallelPassEngine* engine) {
        return SolveAssadi(stream, opt, engine);
      });
  const auto [tg_file_ms, tg_mmap_ms] = sweep(
      "solve: multi-pass threshold greedy (beta=8)",
      [&](SetStream& stream, ParallelPassEngine* engine) {
        return SolveThresholdGreedy(stream, engine);
      });

  std::filesystem::remove_all(dir);

  // --- Acceptance gates. ------------------------------------------------
  const double assadi_speedup = assadi_file_ms / std::max(1e-9, assadi_mmap_ms);
  const double tg_speedup = tg_file_ms / std::max(1e-9, tg_mmap_ms);
  const double drain_speedup = drain_file_ms / std::max(1e-9, drain_mmap_ms);
  const bool speedup_ok = assadi_speedup >= 10.0;
  std::cout << "\n[gate] mmap vs file multi-pass Assadi solve: "
            << assadi_speedup << "x (threshold greedy: " << tg_speedup
            << "x, drain: " << drain_speedup << "x) -> "
            << (speedup_ok ? "PASS" : "FAIL") << " (need >= 10x)\n";
  std::cout << "[gate] Assadi + threshold-greedy solutions identical across "
            << "sources x threads, checksums match: "
            << ((identical_ok && feasible_ok && checksums_ok) ? "PASS"
                                                              : "FAIL")
            << "\n";
  return speedup_ok && identical_ok && feasible_ok && checksums_ok ? 0 : 1;
}
