// E3 — Lemma 3.2 / Remark 3.1: on D_SC, θ = 1 plants an opt-2 cover while
// θ = 0 has opt > 2α w.h.p. This bench samples both conditionals over a
// parameter grid and reports the exact decision "is there a cover of size
// <= 2α?" (branch-and-bound with size_limit), plus the block structure
// (|S_i ∪ T_i| misses exactly one f_i-block).

#include <iostream>

#include "bench_common.h"
#include "instance/hard_set_cover.h"
#include "offline/exact_set_cover.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void OptGap() {
  bench::Banner("E3a: opt gap on D_SC",
                "theta=1 -> opt = 2;  theta=0 -> opt > 2*alpha w.h.p.  "
                "[Lemma 3.2]");
  TablePrinter table({"n", "m", "alpha", "t", "theta", "trials",
                      "opt<=2a", "frac"});
  struct Grid {
    std::size_t n, m;
    double alpha;
    double t_scale;  // keeps t in the Lemma 3.2 regime n/t^alpha >> 1
    int trials;
  };
  // t_scale plays the role of the paper's 2^{-15}: it pulls t down so the
  // missing blocks of any alpha pair-unions still intersect (n/t^alpha
  // ~ 16+ expected doubly-missed elements). t_scale = 1 rows are included
  // as the out-of-regime contrast the E2 bench sweeps in detail.
  for (const Grid g : {Grid{2048, 8, 2.0, 0.35, 12},
                       Grid{4096, 8, 2.0, 0.34, 12},
                       Grid{8192, 8, 2.0, 0.32, 8},
                       Grid{4096, 12, 2.0, 0.36, 8},
                       Grid{16384, 6, 3.0, 0.53, 6},
                       Grid{1024, 8, 2.0, 1.0, 8}}) {
    HardSetCoverParams params;
    params.n = g.n;
    params.m = g.m;
    params.alpha = g.alpha;
    params.t_scale = g.t_scale;
    HardSetCoverDistribution dist(params);
    for (const int theta : {1, 0}) {
      Rng rng(g.n * 7 + g.m + theta);
      int small_opt = 0;
      for (int trial = 0; trial < g.trials; ++trial) {
        const HardSetCoverInstance inst =
            theta == 1 ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
        ExactSetCoverOptions options;
        options.size_limit = static_cast<std::size_t>(2 * g.alpha);
        const ExactSetCoverResult result =
            SolveExactSetCover(inst.ToSetSystem(), options);
        if (result.feasible) ++small_opt;
      }
      table.BeginRow();
      table.AddCell(static_cast<std::uint64_t>(g.n));
      table.AddCell(static_cast<std::uint64_t>(g.m));
      table.AddCell(g.alpha, 1);
      table.AddCell(static_cast<std::uint64_t>(dist.DisjT()));
      table.AddCell(theta);
      table.AddCell(g.trials);
      table.AddCell(small_opt);
      table.AddCell(static_cast<double>(small_opt) / g.trials, 2);
    }
  }
  table.Print(std::cout);
  std::cout << "# expect: frac = 1.00 rows for theta=1, frac ~ 0.00 rows "
               "for theta=0\n";
}

void BlockStructure() {
  bench::Banner("E3b: pair-union block structure",
                "S_i u T_i misses exactly the block f_i(A_i n B_i) of "
                "~n/t elements  [Remark 3.1(iii)]");
  HardSetCoverParams params;
  params.n = 1024;
  params.m = 32;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  bench::Params("n=1024 m=32 alpha=2");
  HardSetCoverDistribution dist(params);
  Rng rng(9);
  const HardSetCoverInstance inst = dist.SampleThetaZero(rng);
  TablePrinter table({"quantity", "min", "mean", "max", "n/t"});
  double min_missing = 1e18, max_missing = 0, sum_missing = 0;
  for (std::size_t i = 0; i < inst.m(); ++i) {
    DynamicBitset missing = inst.s_sets[i] | inst.t_sets[i];
    missing.Complement();
    const double count = static_cast<double>(missing.CountSet());
    min_missing = std::min(min_missing, count);
    max_missing = std::max(max_missing, count);
    sum_missing += count;
  }
  table.BeginRow();
  table.AddCell("|[n] \\ (S_i u T_i)|");
  table.AddCell(min_missing, 1);
  table.AddCell(sum_missing / static_cast<double>(inst.m()), 1);
  table.AddCell(max_missing, 1);
  table.AddCell(static_cast<double>(params.n) /
                    static_cast<double>(inst.t),
                1);
  table.Print(std::cout);
  std::cout << "# expect: min = mean = max = n/t (up to rounding)\n";
}

void SetSizes() {
  bench::Banner("E3c: set sizes",
                "|S_i|, |T_i| = 2n/3 +- o(n)  [Remark 3.1(i)]");
  HardSetCoverParams params;
  params.n = 8192;
  params.m = 64;
  params.alpha = 3.0;
  params.t_scale = 2.0;
  bench::Params("n=8192 m=64 alpha=3 t_scale=2");
  HardSetCoverDistribution dist(params);
  Rng rng(10);
  const HardSetCoverInstance inst = dist.Sample(rng);
  double min_frac = 1.0, max_frac = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < inst.m(); ++i) {
    const double frac = static_cast<double>(inst.s_sets[i].CountSet()) /
                        static_cast<double>(params.n);
    min_frac = std::min(min_frac, frac);
    max_frac = std::max(max_frac, frac);
    sum += frac;
  }
  TablePrinter table({"quantity", "min", "mean", "max", "target"});
  table.BeginRow();
  table.AddCell("|S_i| / n");
  table.AddCell(min_frac, 3);
  table.AddCell(sum / static_cast<double>(inst.m()), 3);
  table.AddCell(max_frac, 3);
  table.AddCell(2.0 / 3.0, 3);
  table.Print(std::cout);
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::OptGap();
  streamsc::BlockStructure();
  streamsc::SetSizes();
  return 0;
}
