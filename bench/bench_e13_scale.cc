// E13: hybrid sparse/dense substrate + parallel pass engine at scale.
//
// Measures the two per-pass hot paths on sparse instances (density <= 1%):
//
//   projection  S'_i = S_i ∩ U_smpl for every set (the space-dominant
//               pass of the sampling algorithms), and
//   pass scan   the pruning scan |S_i ∩ U| / subtract loop.
//
// Three configurations per instance:
//
//   baseline  all-dense storage, element-at-a-time projection (the seed
//             code path: one Test per sampled element) and dense scans;
//   hybrid    SetSystem's density-thresholded storage, word-gather /
//             O(k) projection, SetView scans;
//   parallel  hybrid + ParallelPassEngine thread sweep, verifying the
//             determinism contract (byte-identical results for 1, 2, and
//             8 threads).
//
// Acceptance: hybrid >= 5x over baseline on projection+scan combined for
// density <= 1%, and identical bytes across the thread sweep.
//
// Usage: bench_e13_scale [n] [decoys] [densities_permille] [sample_pct]
//   defaults: n=200000 decoys=256 densities=2,5,10 sample_pct=10
//   (drive n up to 1000000 for the scale sweep)

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sampling.h"
#include "instance/set_system.h"
#include "stream/parallel_pass_engine.h"
#include "stream/set_stream.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

// The seed's projection loop: one Test/Set round-trip per sampled
// element, regardless of the set's density. Kept here as the measured
// baseline.
DynamicBitset NaiveProject(const SubUniverse& sub, SetView set) {
  DynamicBitset out(sub.size());
  for (std::size_t i = 0; i < sub.size(); ++i) {
    if (set.Test(sub.ToFull(i))) out.Set(i);
  }
  return out;
}

// A coverable sparse instance: a planted partition into n/k blocks of k
// elements plus `decoys` random k-subsets.
std::vector<std::vector<ElementId>> SparseInstanceMembers(std::size_t n,
                                                          std::size_t k,
                                                          std::size_t decoys,
                                                          Rng& rng) {
  std::vector<std::vector<ElementId>> members;
  for (std::size_t lo = 0; lo < n; lo += k) {
    std::vector<ElementId> block;
    for (std::size_t e = lo; e < std::min(lo + k, n); ++e) {
      block.push_back(static_cast<ElementId>(e));
    }
    members.push_back(std::move(block));
  }
  for (std::size_t d = 0; d < decoys; ++d) {
    members.push_back(rng.RandomSubsetOfSize(n, k).ToIndices());
  }
  return members;
}

std::uint64_t HashBitset(const DynamicBitset& bs) { return bs.Hash(); }

std::uint64_t HashRun(const std::vector<SetId>& taken,
                      const DynamicBitset& uncovered,
                      const std::vector<ProjectedSet>& projections) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (SetId id : taken) mix(id);
  mix(HashBitset(uncovered));
  // Hash the dense materialization so the value depends only on content,
  // not on which representation ProjectAll chose.
  for (const auto& p : projections) mix(HashBitset(ViewOf(p).ToDense()));
  return h;
}

std::vector<std::size_t> ParseCsvSizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  const std::size_t decoys =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 256;
  const std::vector<std::size_t> densities_permille =
      argc > 3 ? ParseCsvSizes(argv[3]) : std::vector<std::size_t>{2, 5, 10};
  const double sample_rate =
      (argc > 4 ? static_cast<double>(std::strtoull(argv[4], nullptr, 10))
                : 10.0) /
      100.0;

  bench::Banner("E13-scale",
                "hybrid sparse/dense sets + parallel pass engine: >=5x on "
                "sparse projection/pass scans, bit-identical across threads");
  bench::Params("n=" + std::to_string(n) + " decoys=" + std::to_string(decoys) +
                " sample=" + std::to_string(static_cast<int>(
                                 sample_rate * 100)) + "%");

  TablePrinter table({"density", "m", "mem_dense", "mem_hybrid", "proj_base_ms",
                      "proj_hyb_ms", "scan_base_ms", "scan_hyb_ms", "speedup"});
  // Acceptance: some sparse instance (density <= 1%) reaches 5x.
  bool sparse_speedup_seen = false;
  bool identical_ok = true;

  for (const std::size_t permille : densities_permille) {
    const std::size_t k = std::max<std::size_t>(1, n * permille / 1000);
    Rng rng(7);
    const auto members = SparseInstanceMembers(n, k, decoys, rng);

    // Same contents, two storage policies.
    SetSystem dense_system(n, /*sparsity_threshold=*/0.0);
    SetSystem hybrid(n);
    for (const auto& ids : members) {
      dense_system.AddSetFromIndices(ids);
      hybrid.AddSetFromIndices(ids);
    }
    const std::size_t m = hybrid.num_sets();

    Rng sample_rng(11);
    const DynamicBitset sampled = sample_rng.BernoulliSubset(n, sample_rate);
    const SubUniverse sub(sampled);

    // --- Projection pass: baseline vs hybrid (best of 3 reps). ----------
    constexpr int kReps = 3;
    const auto best_of = [](const auto& fn) {
      double best = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch timer;
        fn();
        const double ms = timer.ElapsedMillis();
        if (rep == 0 || ms < best) best = ms;
      }
      return best;
    };

    std::vector<DynamicBitset> base_projs(m);
    std::vector<DynamicBitset> hyb_projs(m);
    const double proj_base_ms = best_of([&] {
      for (SetId id = 0; id < m; ++id) {
        base_projs[id] = NaiveProject(sub, dense_system.set(id));
      }
    });
    const double proj_hyb_ms = best_of([&] {
      for (SetId id = 0; id < m; ++id) {
        hyb_projs[id] = sub.Project(hybrid.set(id));
      }
    });

    for (SetId id = 0; id < m; ++id) {
      if (!(base_projs[id] == hyb_projs[id])) identical_ok = false;
    }

    // --- Pass scan: the pruning loop, baseline vs hybrid. ---------------
    // Threshold n/10 so the scan dominates (sparse sets never reach it).
    const double threshold = static_cast<double>(n) / 10.0;
    const auto run_scan = [&](const SetSystem& system, double* millis) {
      std::uint64_t hash = 0;
      *millis = best_of([&] {
        DynamicBitset uncovered = DynamicBitset::Full(n);
        std::vector<SetId> taken;
        for (SetId id = 0; id < m; ++id) {
          const SetView view = system.set(id);
          const Count gain = view.CountAnd(uncovered);
          if (gain > 0 && static_cast<double>(gain) >= threshold) {
            taken.push_back(id);
            view.AndNotInto(uncovered);
          }
        }
        hash = HashRun(taken, uncovered, {});
      });
      return hash;
    };
    double scan_base_ms = 0.0, scan_hyb_ms = 0.0;
    const std::uint64_t scan_base_hash = run_scan(dense_system, &scan_base_ms);
    const std::uint64_t scan_hyb_hash = run_scan(hybrid, &scan_hyb_ms);
    if (scan_base_hash != scan_hyb_hash) identical_ok = false;

    const double speedup = (proj_base_ms + scan_base_ms) /
                           std::max(1e-9, proj_hyb_ms + scan_hyb_ms);
    if (permille <= 10 && speedup >= 5.0) sparse_speedup_seen = true;

    const SetSystem::Memory dense_mem = dense_system.MemoryUsage();
    const SetSystem::Memory hybrid_mem = hybrid.MemoryUsage();

    table.BeginRow();
    table.AddCell(std::to_string(permille) + "e-3");
    table.AddCell(static_cast<std::uint64_t>(m));
    table.AddCell(HumanBytes(dense_mem.total_bytes()));
    table.AddCell(HumanBytes(hybrid_mem.total_bytes()));
    table.AddCell(proj_base_ms, 2);
    table.AddCell(proj_hyb_ms, 2);
    table.AddCell(scan_base_ms, 2);
    table.AddCell(scan_hyb_ms, 2);
    table.AddCell(speedup, 2);
  }
  table.PrintWithTitle(std::cout, "hybrid substrate vs dense baseline");

  // --- Thread sweep: determinism + wall time. ---------------------------
  {
    const std::size_t permille = densities_permille.back();
    const std::size_t k = std::max<std::size_t>(1, n * permille / 1000);
    Rng rng(7);
    const auto members = SparseInstanceMembers(n, k, decoys, rng);
    SetSystem hybrid(n);
    for (const auto& ids : members) hybrid.AddSetFromIndices(ids);

    Rng sample_rng(11);
    const SubUniverse sub(sample_rng.BernoulliSubset(n, sample_rate));
    const double threshold = static_cast<double>(n) / 10.0;

    TablePrinter sweep({"threads", "scan_ms", "project_ms", "hash"});
    std::uint64_t reference_hash = 0;
    bool first = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      ParallelPassEngine engine(threads);
      VectorSetStream stream(hybrid);

      Stopwatch timer;
      std::vector<StreamItem> items = DrainPass(stream);
      DynamicBitset uncovered = DynamicBitset::Full(n);
      std::vector<SetId> taken;
      ThresholdScan(items, threshold, uncovered, &engine,
                    [&taken](SetId id) { taken.push_back(id); });
      const double scan_ms = timer.ElapsedMillis();

      timer.Restart();
      const std::vector<ProjectedSet> projections =
          ProjectAll(sub, items, &engine);
      const double project_ms = timer.ElapsedMillis();

      const std::uint64_t hash = HashRun(taken, uncovered, projections);
      if (first) {
        reference_hash = hash;
        first = false;
      } else if (hash != reference_hash) {
        identical_ok = false;
      }

      sweep.BeginRow();
      sweep.AddCell(static_cast<std::uint64_t>(threads));
      sweep.AddCell(scan_ms, 2);
      sweep.AddCell(project_ms, 2);
      sweep.AddCell(std::to_string(hash));
    }
    sweep.PrintWithTitle(std::cout,
                         "parallel pass engine thread sweep (determinism)");
  }

  std::cout << "\nresult: sparse instance (density <= 1%) with speedup >= 5x: "
            << (sparse_speedup_seen ? "PASS" : "FAIL")
            << "\nresult: byte-identical across representations/threads: "
            << (identical_ok ? "PASS" : "FAIL") << "\n";
  return (sparse_speedup_seen && identical_ok) ? 0 : 1;
}
