// A3 — t_scale regime boundary. The paper sets t = 2^{-15}(n/log m)^{1/α}
// for D_SC; the tiny constant is not an accident — Lemma 3.2 needs the
// missing blocks of any α pair-unions to intersect, i.e. n/t^α ≫ 1. This
// bench sweeps t_scale and locates the regime boundary empirically: the
// fraction of θ=0 instances with opt ≤ 2α jumps from ~0 to ~1 as t grows
// past n^{1/α}-ish. This is the calibration evidence behind every t_scale
// chosen in the tests and benches (DESIGN.md "asymptotic constants").

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "instance/hard_set_cover.h"
#include "offline/exact_set_cover.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void TScaleSweep() {
  bench::Banner("A3: D_SC gap vs t_scale",
                "theta=0 keeps opt > 2*alpha only while n/t^alpha >> 1; "
                "the paper's 2^{-15} buys exactly this  [Lemma 3.2]");
  const std::size_t n = 4096, m = 8;
  const double alpha = 2.0;
  const int trials = 12;
  bench::Params("n=4096 m=8 alpha=2 trials=12 per row; exact decision "
                "opt <= 2*alpha via branch-and-bound");
  TablePrinter table({"t_scale", "t", "n/t^alpha", "frac(opt<=2a) theta=0",
                      "frac(opt<=2a) theta=1"});
  for (const double t_scale : {0.15, 0.25, 0.34, 0.5, 0.7, 1.0}) {
    HardSetCoverParams params;
    params.n = n;
    params.m = m;
    params.alpha = alpha;
    params.t_scale = t_scale;
    HardSetCoverDistribution dist(params);
    const double t = static_cast<double>(dist.DisjT());

    double frac[2] = {0.0, 0.0};
    for (const int theta : {0, 1}) {
      Rng rng(static_cast<std::uint64_t>(t_scale * 1000) + theta);
      int small = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const HardSetCoverInstance inst =
            theta == 1 ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
        ExactSetCoverOptions options;
        options.size_limit = static_cast<std::size_t>(2 * alpha);
        if (SolveExactSetCover(inst.ToSetSystem(), options).feasible) {
          ++small;
        }
      }
      frac[theta] = static_cast<double>(small) / trials;
    }

    table.BeginRow();
    table.AddCell(t_scale, 2);
    table.AddCell(static_cast<std::uint64_t>(dist.DisjT()));
    table.AddCell(static_cast<double>(n) / std::pow(t, alpha), 1);
    table.AddCell(frac[0], 2);
    table.AddCell(frac[1], 2);
  }
  table.Print(std::cout);
  std::cout << "# expect: theta=1 column pinned at 1.00; theta=0 column "
               "~0.00 while n/t^alpha >= ~15 and rising to 1.00 as the "
               "regime breaks — the boundary every calibrated t_scale in "
               "this repo stays left of\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::TScaleSweep();
  return 0;
}
