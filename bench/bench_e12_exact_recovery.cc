// E12 — Result 1, footnote 1: for *exact* streaming set cover the right
// pass/space tradeoff is linear (n/p), not exponential (n^{1/p}). The
// chunked exact pair finder realizes the upper-bound side on the paper's
// own hard instances (opt = 2): p passes, ~2m·n/p bits of projections per
// pass. This bench sweeps p and compares measured space against both
// curves.

#include <iostream>

#include "bench_common.h"
#include "core/pair_finder.h"
#include "instance/hard_set_cover.h"
#include "stream/set_stream.h"
#include "util/math.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

void PassSweep() {
  bench::Banner("E12: exact recovery, space vs passes",
                "exact algorithms track m*n/p (linear), far above "
                "m*n^{1/p} for p >= 2  [Result 1, footnote 1]");
  HardSetCoverParams params;
  params.n = 8192;
  params.m = 48;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  bench::Params("D_SC theta=1: n=8192, 2m=96 sets; exact pair recovery");
  HardSetCoverDistribution dist(params);
  Rng rng(3);
  const HardSetCoverInstance inst = dist.SampleThetaOne(rng);
  const SetSystem system = inst.ToSetSystem();
  const double mn = static_cast<double>(2 * params.m) *
                    static_cast<double>(params.n);

  TablePrinter table({"p", "found", "space_bits", "2m*n/p", "bits/(2mn/p)",
                      "2m*n^{1/p}", "candidates_pass1"});
  for (const std::size_t p : {1, 2, 4, 8, 16}) {
    VectorSetStream stream(system);
    ExactPairFinder finder(PairFinderConfig{p, 2'000'000});
    const PairFinderResult result = finder.Run(stream);
    const double bits = static_cast<double>(result.peak_space_bytes) * 8;
    const double linear = mn / static_cast<double>(p);
    const double exponential =
        static_cast<double>(2 * params.m) *
        NthRoot(static_cast<double>(params.n), static_cast<double>(p));
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(p));
    table.AddCell(result.found ? "yes" : "NO");
    table.AddCell(bits, 0);
    table.AddCell(linear, 0);
    table.AddCell(bits / linear, 3);
    table.AddCell(exponential, 0);
    table.AddCell(result.candidates_after_first_pass);
  }
  table.Print(std::cout);
  std::cout << "# expect: found=yes everywhere; bits/(2mn/p) roughly flat "
               "(linear law) while 2m*n^{1/p} collapses far below measured "
               "space — the n^{1/p} tradeoff is unattainable for exact "
               "recovery, as Theorem 1 proves\n";
}

void CorrectnessBothThetas() {
  bench::Banner("E12b: exactness check",
                "pair finder accepts theta=1 and rejects theta=0");
  HardSetCoverParams params;
  params.n = 2048;
  params.m = 24;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  TablePrinter table({"theta", "trials", "found_pair"});
  for (const int theta : {1, 0}) {
    Rng rng(70 + theta);
    const int trials = 10;
    int found = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const HardSetCoverInstance inst =
          theta == 1 ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
      const SetSystem system = inst.ToSetSystem();
      VectorSetStream stream(system);
      ExactPairFinder finder(PairFinderConfig{4, 2'000'000});
      if (finder.Run(stream).found) ++found;
    }
    table.BeginRow();
    table.AddCell(theta);
    table.AddCell(trials);
    table.AddCell(found);
  }
  table.Print(std::cout);
  std::cout << "# expect: 10/10 for theta=1, 0/10 for theta=0\n";
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::PassSweep();
  streamsc::CorrectnessBothThetas();
  return 0;
}
