// E9 — Robustness to arrival order (Theorem 1 holds even for random
// arrival; Theorem 2's algorithm works in adversarial order). This bench
// runs every algorithm under adversarial, random-once, and random-per-pass
// orders on the same instances and reports feasibility / ratio / space:
// the sampling-based algorithms should be order-insensitive, while
// one-pass greedy collapses on the ascending-size adversarial order.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/assadi_set_cover.h"
#include "core/one_pass_set_cover.h"
#include "core/threshold_greedy.h"
#include "instance/generators.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace streamsc {
namespace {

const char* OrderName(StreamOrder order) {
  switch (order) {
    case StreamOrder::kAdversarial:
      return "adversarial";
    case StreamOrder::kRandomOnce:
      return "random-once";
    case StreamOrder::kRandomEachPass:
      return "random-each-pass";
  }
  return "?";
}

// Ascending-size instance: singletons first, the one-set optimum last —
// worst case for take-anything one-pass algorithms.
SetSystem AscendingTrap(std::size_t n) {
  SetSystem system(n);
  for (ElementId e = 0; e < n / 2; ++e) {
    system.AddSetFromIndices({e});
  }
  DynamicBitset rest(n);
  for (std::size_t e = 0; e < n; ++e) rest.Set(e);
  system.AddSet(std::move(rest));  // full set, arrives last
  return system;
}

void OrderSweep() {
  bench::Banner("E9: arrival-order robustness",
                "sampling algorithms are order-insensitive; one-pass "
                "greedy collapses on adversarial order  [Theorem 1 "
                "robustness / Remark on random arrival]");
  Rng gen_rng(1);
  struct Workload {
    std::string name;
    SetSystem system;
    std::size_t opt;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"planted(n=2048,m=64,opt=4)",
       PlantedCoverInstance(2048, 64, 4, gen_rng), 4});
  workloads.push_back({"ascending-trap(n=512)", AscendingTrap(512), 1});

  TablePrinter table({"workload", "algorithm", "order", "feasible", "sets",
                      "ratio", "passes"});
  for (const Workload& workload : workloads) {
    for (const StreamOrder order :
         {StreamOrder::kAdversarial, StreamOrder::kRandomOnce,
          StreamOrder::kRandomEachPass}) {
      std::vector<std::pair<std::string,
                            std::unique_ptr<StreamingSetCoverAlgorithm>>>
          algorithms;
      AssadiConfig config;
      config.alpha = 2;
      config.epsilon = 0.5;
      algorithms.emplace_back("assadi(a=2)",
                              std::make_unique<AssadiSetCover>(config));
      algorithms.emplace_back("threshold-greedy",
                              std::make_unique<ThresholdGreedySetCover>());
      algorithms.emplace_back("one-pass",
                              std::make_unique<OnePassSetCover>());
      for (auto& [name, algorithm] : algorithms) {
        Rng order_rng(7);
        VectorSetStream stream(workload.system, order, &order_rng);
        const SetCoverRunResult result = algorithm->Run(stream);
        table.BeginRow();
        table.AddCell(workload.name);
        table.AddCell(name);
        table.AddCell(OrderName(order));
        table.AddCell(result.feasible ? "yes" : "NO");
        table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
        table.AddCell(static_cast<double>(result.solution.size()) /
                          static_cast<double>(workload.opt),
                      2);
        table.AddCell(result.stats.passes);
      }
    }
  }
  table.Print(std::cout);
  std::cout << "# expect: assadi rows stable across orders (the Theorem 1 "
               "robustness direction: random arrival does not make the "
               "problem easier for, or break, sampling-based algorithms); "
               "one-pass ratio explodes on ascending-trap under *every* "
               "order (its take-anything rule pays for each helpful set "
               "it meets, and the trap's singleton tail is order-proof); "
               "threshold-greedy prefers adversarial-sorted planted "
               "streams to shuffled ones — order sensitivity the "
               "multi-pass algorithms are built to avoid\n";
}

void RandomOrderErrorRates() {
  bench::Banner("E9b: feasibility across 20 random orders",
                "random arrival does not break the Theorem 2 algorithm");
  Rng gen_rng(2);
  const SetSystem system = PlantedCoverInstance(1024, 48, 4, gen_rng);
  int feasible = 0;
  double ratio_sum = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    Rng order_rng(trial * 13 + 1);
    VectorSetStream stream(system, StreamOrder::kRandomOnce, &order_rng);
    AssadiConfig config;
    config.alpha = 2;
    config.epsilon = 0.5;
    config.seed = trial;
    AssadiSetCover algorithm(config);
    const SetCoverRunResult result = algorithm.Run(stream);
    if (result.feasible) ++feasible;
    ratio_sum += static_cast<double>(result.solution.size()) / 4.0;
  }
  TablePrinter table({"trials", "feasible", "mean_ratio"});
  table.BeginRow();
  table.AddCell(trials);
  table.AddCell(feasible);
  table.AddCell(ratio_sum / trials, 3);
  table.Print(std::cout);
}

}  // namespace
}  // namespace streamsc

int main() {
  streamsc::OrderSweep();
  streamsc::RandomOrderErrorRates();
  return 0;
}
