// E15: what the per-run arena memory model buys — per-run p50/p99 latency
// and heap-allocation counts with the run arena off (heap fallback) vs on
// (warm MonotonicArena, reset per run), at 1 and 8 threads.
//
// Two workloads:
//
//   e7   the E7 planted-cover comparison instance (n=8192, m=128, opt=4):
//        mixed sparse/dense payloads, every registry solver;
//   e14  the E14 dense planted-blocks instance (n=1e5, opt=8, 24 decoys)
//        served from memory: the multi-pass regime where per-pass scratch
//        dominates, assadi + threshold_greedy.
//
// "arena=off" is today's heap-fallback path (RunContext.arena == nullptr;
// thread-local scratch/table arenas are unconditional and stay on), so
// the alloc column isolates exactly what routing *run-lived* state
// through the run arena eliminates. Allocation counts come from the same
// operator-new interposer the `alloc` ctest label uses
// (tests/testing/alloc_counter.cc, compiled into this binary); the
// reported count is the steady-state (last measured run) count, which the
// zero-alloc test pins at 0 for arena=on. Solutions are asserted
// byte-identical between the off/on rows.
//
// Usage: bench_e15_alloc [runs] [e14_n]
//   defaults: runs=20 e14_n=100000

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/solver_registry.h"
#include "bench_common.h"
#include "instance/generators.h"
#include "instance/set_system.h"
#include "stream/parallel_pass_engine.h"
#include "stream/stream_adapters.h"
#include "testing/alloc_counter.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

constexpr std::size_t kParallelThreads = 8;

struct Contender {
  std::string label;
  std::string solver;
  std::vector<std::string> options;
};

// The E14 shape: a partition into n/opt dense blocks plus random decoys.
SetSystem PlantedBlocks(std::size_t n, std::size_t opt, std::size_t decoys,
                        Rng& rng) {
  const std::size_t block = n / opt;
  SetSystem system(n);
  for (std::size_t lo = 0; lo < n; lo += block) {
    std::vector<ElementId> members;
    for (std::size_t e = lo; e < std::min(lo + block, n); ++e) {
      members.push_back(static_cast<ElementId>(e));
    }
    system.AddSetFromIndices(members);
  }
  for (std::size_t d = 0; d < decoys; ++d) {
    system.AddSetFromIndices(rng.RandomSubsetOfSize(n, block).ToIndices());
  }
  return system;
}

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[rank];
}

void MeasureWorkload(const std::string& workload, const SetSystem& system,
                     const std::vector<Contender>& contenders,
                     std::size_t runs, TablePrinter& table) {
  const std::unique_ptr<ParallelPassEngine> pool =
      MakeEngine(kParallelThreads);
  for (const Contender& contender : contenders) {
    for (const std::size_t threads : {std::size_t{1}, kParallelThreads}) {
      ArenaVector<SetId> heap_chosen;
      for (const bool arena_on : {false, true}) {
        StatusOr<std::unique_ptr<AnySolver>> solver =
            SolverRegistry::Global().Create(contender.solver,
                                            contender.options);
        STREAMSC_CHECK(solver.ok(), "registry rejected a contender");
        VectorSetStream stream(system);
        MonotonicArena arena;
        RunContext context;
        context.engine = threads == 1 ? nullptr : pool.get();
        context.arena = arena_on ? &arena : nullptr;

        SolveReport report;  // reused: report refills are capacity-only
        std::vector<double> latencies_ms;
        latencies_ms.reserve(runs);
        std::uint64_t steady_allocs = 0;
        std::uint64_t steady_bytes = 0;
        // Two warm-up runs (arena chunks, thread-local arenas, engine job
        // pool, report capacity), then `runs` measured runs.
        for (std::size_t run = 0; run < runs + 2; ++run) {
          arena.Reset();
          streamsc::testing::ArmAllocCounter();
          Stopwatch timer;
          const Status status = (*solver)->RunInto(stream, context, &report);
          const double ms = timer.ElapsedSeconds() * 1e3;
          const streamsc::testing::AllocCounterStats stats =
              streamsc::testing::DisarmAllocCounter();
          STREAMSC_CHECK(status.ok(), "contender run failed");
          if (run < 2) continue;
          latencies_ms.push_back(ms);
          steady_allocs = stats.allocations;
          steady_bytes = stats.bytes;
        }
        if (!arena_on) {
          heap_chosen = report.solution.chosen;
        } else {
          STREAMSC_CHECK(report.solution.chosen == heap_chosen,
                         "arena-on run diverged from the heap run");
        }

        table.BeginRow();
        table.AddCell(workload);
        table.AddCell(contender.label);
        table.AddCell(static_cast<std::uint64_t>(threads));
        table.AddCell(arena_on ? "on" : "off");
        table.AddCell(Percentile(latencies_ms, 0.50), 3);
        table.AddCell(Percentile(latencies_ms, 0.99), 3);
        table.AddCell(steady_allocs);
        table.AddCell(steady_bytes / 1024);
        table.AddCell(arena_on ? HumanBytes(arena.high_water())
                               : std::string("-"));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamsc;
  const std::size_t runs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20;
  const std::size_t e14_n =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 100'000;

  bench::Banner("E15: arena memory model",
                "steady-state solves are heap-allocation-free; the arena "
                "also flattens the latency tail");
  bench::Params("runs=" + std::to_string(runs) +
                " e14_n=" + std::to_string(e14_n) +
                " (allocs/run and kb/run are steady-state, after 2 "
                "warm-up runs)");

  TablePrinter table({"workload", "solver", "threads", "arena", "p50_ms",
                      "p99_ms", "allocs/run", "kb/run", "arena_hw"});
  {
    Rng rng(1);
    const SetSystem system = PlantedCoverInstance(8192, 128, 4, rng);
    const std::vector<Contender> contenders = {
        {"assadi", "assadi", {"alpha=2", "epsilon=0.5"}},
        {"har-peled", "har_peled", {"alpha=2"}},
        {"demaine", "demaine", {"alpha=4"}},
        {"emek-rosen", "emek_rosen", {}},
        {"one-pass", "one_pass", {}},
        {"threshold-greedy", "threshold_greedy", {}},
        {"sieve-mc", "sieve_mc", {"k=4"}},
        {"element-sampling-mc", "element_sampling_mc", {"k=3"}},
        {"pair-finder", "pair_finder", {"passes=4"}},
    };
    MeasureWorkload("e7", system, contenders, runs, table);
  }
  {
    Rng rng(2);
    const SetSystem system = PlantedBlocks(e14_n, 8, 24, rng);
    const std::vector<Contender> contenders = {
        {"assadi", "assadi", {"alpha=2", "epsilon=0.5", "known_opt=8"}},
        {"threshold-greedy", "threshold_greedy", {"beta=8"}},
    };
    MeasureWorkload("e14", system, contenders, runs, table);
  }
  table.Print(std::cout);
  std::cout << "\n# expect: allocs/run == 0 with arena=on for every row "
               "(the `alloc` ctest label enforces this) at latency parity; "
               "the arena's payoff is isolation — a multiplexing daemon "
               "stops paying the global allocator (and its locks) anything "
               "per request\n";
  return 0;
}
