// Fuzz harness for the solve daemon's wire codec (serve/frame.h), the
// fourth untrusted parser: frame payloads arriving from arbitrary
// network peers. Contract under attack: DecodeRequest and DecodeResponse
// are *total* — any byte string, torn or hostile, returns a Status with
// a diagnostic message; never an abort, never an out-of-bounds read,
// never an attacker-sized allocation (a hostile count must be rejected
// against the remaining payload before any resize).
//
// Input shape: first byte steers the decoder (even = request, odd =
// response); the rest is the payload. Accepted payloads are re-encoded
// and must decode again to the same bytes (a decode/encode/decode
// round-trip pin, which keeps the two codecs from drifting apart under
// mutation).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/frame.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  if (size > streamsc::serve::kMaxFrameBytes) return 0;
  const bool as_request = (data[0] & 1) == 0;
  const std::string_view payload(
      reinterpret_cast<const char*>(data + 1), size - 1);

  if (as_request) {
    streamsc::serve::SolveRequest request;
    const streamsc::Status status =
        streamsc::serve::DecodeRequest(payload, &request);
    if (!status.ok()) {
      STREAMSC_CHECK(!status.message().empty(),
                     "frame rejection must carry a diagnostic message");
      return 0;
    }
    const std::string encoded = streamsc::serve::EncodeRequest(request);
    streamsc::serve::SolveRequest again;
    STREAMSC_CHECK(
        streamsc::serve::DecodeRequest(encoded, &again).ok(),
        "re-encoding an accepted request produced an undecodable frame");
    STREAMSC_CHECK(streamsc::serve::EncodeRequest(again) == encoded,
                   "request codec round-trip is not a fixed point");
    return 0;
  }

  streamsc::serve::SolveResponse response;
  const streamsc::Status status =
      streamsc::serve::DecodeResponse(payload, &response);
  if (!status.ok()) {
    STREAMSC_CHECK(!status.message().empty(),
                   "frame rejection must carry a diagnostic message");
    return 0;
  }
  const std::string encoded = streamsc::serve::EncodeResponse(response);
  streamsc::serve::SolveResponse again;
  STREAMSC_CHECK(
      streamsc::serve::DecodeResponse(encoded, &again).ok(),
      "re-encoding an accepted response produced an undecodable frame");
  STREAMSC_CHECK(streamsc::serve::EncodeResponse(again) == encoded,
                 "response codec round-trip is not a fixed point");
  return 0;
}
