// Fuzz harness for the ssc1 text parser (instance/serialization.h), the
// first of the three untrusted-input surfaces. Contract under attack:
// arbitrary bytes either parse into a valid SetSystem or produce a
// non-empty InvalidArgument Status — never an abort, never OOB, and an
// accepted instance must survive a write/reparse round trip unchanged in
// shape.

#include <cstddef>
#include <cstdint>
#include <string>

#include "instance/serialization.h"
#include "instance/set_system.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Parsing is O(input), but a tiny header can still name a huge universe;
  // the parser's dimension caps bound allocation, so only wall time needs
  // capping here.
  if (size > (std::size_t{1} << 16)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  const streamsc::StatusOr<streamsc::SetSystem> parsed =
      streamsc::SetSystemFromString(text);
  if (!parsed.ok()) {
    STREAMSC_CHECK(!parsed.status().message().empty(),
                   "ssc1 rejection must carry a diagnostic message");
    return 0;
  }

  // Accepted input: serialize and reparse. The round trip must be
  // accepted too and preserve the instance shape.
  const std::string rewritten = streamsc::SetSystemToString(*parsed);
  const streamsc::StatusOr<streamsc::SetSystem> again =
      streamsc::SetSystemFromString(rewritten);
  STREAMSC_CHECK(again.ok(), "ssc1 round trip rejected its own output");
  STREAMSC_CHECK(again->universe_size() == parsed->universe_size(),
                 "ssc1 round trip changed the universe size");
  STREAMSC_CHECK(again->num_sets() == parsed->num_sets(),
                 "ssc1 round trip changed the set count");
  return 0;
}
