// Fuzz harness for the solver registry's user-input surface
// (api/solver_registry.h), the third untrusted parser: solver names and
// key=value option strings. Contract under attack: SolverRegistry::
// Create never aborts on user input — unknown solver, unknown key,
// malformed or out-of-range value must all come back as a Status whose
// message quotes something actionable (the registry promises at-least-
// as-strict ranges than the config-struct STREAMSC_CHECKs).
//
// Input shape: first line = solver name, remaining lines = one option
// string each. A leading "@<byte>" line steers onto the <byte>-th
// registered solver so mutations keep hitting real per-option parsers
// instead of dying at the unknown-name check.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/solver_registry.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (std::size_t{1} << 12)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  if (lines.empty()) lines.emplace_back();

  const streamsc::SolverRegistry& registry =
      streamsc::SolverRegistry::Global();
  std::string name = lines.front();
  if (name.size() >= 2 && name[0] == '@') {
    const std::vector<std::string> names = registry.Names();
    name = names[static_cast<unsigned char>(name[1]) % names.size()];
  }
  const std::vector<std::string> options(lines.begin() + 1, lines.end());

  const streamsc::StatusOr<std::unique_ptr<streamsc::AnySolver>> solver =
      registry.Create(name, options);
  if (!solver.ok()) {
    STREAMSC_CHECK(!solver.status().message().empty(),
                   "registry rejection must carry a diagnostic message");
    return 0;
  }
  // Accepted options: the solver must be fully formed (usable metadata),
  // still without running anything expensive.
  STREAMSC_CHECK((*solver)->solver() == name,
                 "created solver reports a different registry key");
  STREAMSC_CHECK(!(*solver)->algorithm_name().empty(),
                 "created solver has no display name");
  return 0;
}
