// Fuzz harness for the sscb1 binary reader (storage/), the second
// untrusted-input surface: header, offset index, and payload validation
// in MmapSetStream / LoadBinarySetSystem. Contract under attack: any byte
// string either validates end to end — after which every set view must be
// in bounds — or is rejected with a non-empty Status at open; nothing may
// abort, and the two readers must agree on acceptance.
//
// MmapSetStream reads from a file, so each input is staged through one
// per-process scratch file (same page-cache-hot inode every iteration).

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "storage/mmap_set_stream.h"
#include "stream/set_stream.h"
#include "util/check.h"

namespace {

const std::string& ScratchPath() {
  static const std::string path = [] {
    const char* tmpdir = std::getenv("TMPDIR");
    return std::string(tmpdir ? tmpdir : "/tmp") +
           "/streamsc_fuzz_sscb1." + std::to_string(::getpid());
  }();
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (std::size_t{1} << 16)) return 0;
  {
    std::ofstream out(ScratchPath(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }

  streamsc::MmapSetStream stream(ScratchPath());
  if (!stream.status().ok()) {
    STREAMSC_CHECK(!stream.status().message().empty(),
                   "sscb1 rejection must carry a diagnostic message");
    // A rejected stream must present as empty, not as a half-loaded one.
    STREAMSC_CHECK(stream.num_sets() == 0,
                   "rejected sscb1 stream still exposes sets");
    return 0;
  }

  // Validated file: every view the stream serves must stay inside the
  // declared universe — walk one full pass and touch every element.
  const std::size_t n = stream.universe_size();
  stream.BeginPass();
  streamsc::StreamItem item;
  std::size_t sets_seen = 0;
  while (stream.Next(&item)) {
    ++sets_seen;
    item.set.ForEach([n](std::size_t element) {
      STREAMSC_CHECK(element < n,
                     "validated sscb1 payload served an out-of-range id");
    });
  }
  STREAMSC_CHECK(sets_seen == stream.num_sets(),
                 "sscb1 pass length disagrees with the index");

  // The SetSystem loader re-validates the same bytes; the two readers
  // accepting different files would mean one of them under-validates.
  const streamsc::StatusOr<streamsc::SetSystem> loaded =
      streamsc::LoadBinarySetSystem(ScratchPath());
  STREAMSC_CHECK(loaded.ok(),
                 "MmapSetStream accepted a file LoadBinarySetSystem rejects");
  STREAMSC_CHECK(loaded->num_sets() == sets_seen,
                 "sscb1 readers disagree on the set count");
  return 0;
}
