// Fuzz harness for the sscd1 delta-log reader (dynamic/delta_log.h), the
// dynamic-instance untrusted-input surface: header arithmetic, record
// framing, payload invariants, and replay liveness. Contract under
// attack: any byte string either validates end to end — after which the
// slot table is internally consistent and every payload view in bounds —
// or is rejected with a non-empty typed Status at open; nothing may
// abort, hang, or over-read.
//
// DeltaLog reads from a file, so each input is staged through one
// per-process scratch file (same page-cache-hot inode every iteration).

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "dynamic/delta_log.h"
#include "util/check.h"

namespace {

const std::string& ScratchPath() {
  static const std::string path = [] {
    const char* tmpdir = std::getenv("TMPDIR");
    return std::string(tmpdir ? tmpdir : "/tmp") +
           "/streamsc_fuzz_sscd1." + std::to_string(::getpid());
  }();
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (std::size_t{1} << 16)) return 0;
  {
    std::ofstream out(ScratchPath(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }

  streamsc::DeltaLog log(ScratchPath());
  if (!log.status().ok()) {
    STREAMSC_CHECK(!log.status().message().empty(),
                   "sscd1 rejection must carry a diagnostic message");
    // A rejected log must present as empty, not as a half-replayed one.
    STREAMSC_CHECK(log.num_slots() == 0,
                   "rejected sscd1 log still exposes slots");
    return 0;
  }

  // Validated log: the slot table must be internally consistent and every
  // delta payload view must stay inside the declared universe.
  const std::size_t n = log.universe_size();
  STREAMSC_CHECK(log.num_slots() >= log.base_num_sets(),
                 "sscd1 replay lost base slots");
  STREAMSC_CHECK(log.num_slots() - log.base_num_sets() <= log.record_count(),
                 "sscd1 replay added more slots than records");
  for (std::uint64_t slot = 0; slot < log.num_slots(); ++slot) {
    STREAMSC_CHECK(log.slot_version(slot) <= log.record_count(),
                   "sscd1 slot version beyond the record count");
    if (slot >= log.base_num_sets()) {
      STREAMSC_CHECK(log.slot_from_delta(slot),
                     "sscd1 appended slot without a delta payload");
    }
    if (!log.slot_from_delta(slot)) continue;
    log.slot_view(slot).ForEach([n](std::size_t element) {
      STREAMSC_CHECK(element < n,
                     "validated sscd1 payload served an out-of-range id");
    });
  }
  return 0;
}
