// Standalone replacement for libFuzzer's driver, used when the toolchain
// cannot link -fsanitize=fuzzer (gcc). Gives every harness a main() that
//
//   1. replays every file in the seed corpus directories, then
//   2. runs a fixed number of deterministic mutations of those seeds
//      (xorshift-seeded byte flips / inserts / erases / truncations /
//      chunk splices — the classic dumb-mutation set)
//
// against the same `LLVMFuzzerTestOneInput` entry point the real fuzzer
// drives. No coverage feedback, but the fixed-iteration run doubles as a
// CI smoke: any abort, sanitizer report, or crash fails the test. Under
// Clang the harness links the real libFuzzer instead and this file is
// not compiled.
//
//   fuzz_foo --corpus DIR [--corpus DIR2 ...] [--runs N] [--seed S] [file...]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t XorShift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::vector<std::uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void RunOne(const std::vector<std::uint8_t>& input) {
  LLVMFuzzerTestOneInput(input.empty() ? nullptr : input.data(),
                         input.size());
}

// Applies 1..4 random edits in place.
void Mutate(std::vector<std::uint8_t>& buf, std::uint64_t& state) {
  const int edits = 1 + static_cast<int>(XorShift(state) % 4);
  for (int e = 0; e < edits; ++e) {
    const std::uint64_t op = XorShift(state) % 6;
    const std::size_t n = buf.size();
    switch (op) {
      case 0:  // flip one bit
        if (n == 0) break;
        buf[XorShift(state) % n] ^=
            static_cast<std::uint8_t>(1u << (XorShift(state) % 8));
        break;
      case 1:  // overwrite a byte with an interesting value
        if (n == 0) break;
        {
          static constexpr std::uint8_t kInteresting[] = {
              0x00, 0xff, 0x7f, 0x80, '0', '9', ' ', '\n', '-', '='};
          buf[XorShift(state) % n] =
              kInteresting[XorShift(state) % sizeof(kInteresting)];
        }
        break;
      case 2:  // insert a random byte
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                                     n ? XorShift(state) % (n + 1) : 0),
                   static_cast<std::uint8_t>(XorShift(state)));
        break;
      case 3:  // erase a byte
        if (n == 0) break;
        buf.erase(buf.begin() +
                  static_cast<std::ptrdiff_t>(XorShift(state) % n));
        break;
      case 4:  // truncate
        if (n == 0) break;
        buf.resize(XorShift(state) % n);
        break;
      case 5:  // duplicate a chunk onto a random position
        if (n == 0) break;
        {
          const std::size_t from = XorShift(state) % n;
          const std::size_t len =
              1 + XorShift(state) % std::min<std::size_t>(n - from, 32);
          const std::size_t to = XorShift(state) % (n + 1);
          std::vector<std::uint8_t> chunk(buf.begin() + from,
                                          buf.begin() + from + len);
          buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(to),
                     chunk.begin(), chunk.end());
        }
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> corpus_dirs;
  std::vector<std::filesystem::path> single_files;
  std::uint64_t runs = 2000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_dirs.emplace_back(argv[++i]);
    } else if (arg == "--runs" && i + 1 < argc) {
      runs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      single_files.emplace_back(arg);
    }
  }

  std::vector<std::vector<std::uint8_t>> seeds;
  for (const auto& dir : corpus_dirs) {
    std::vector<std::filesystem::path> entries;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());  // deterministic order
    for (const auto& path : entries) seeds.push_back(ReadFile(path));
  }
  for (const auto& path : single_files) seeds.push_back(ReadFile(path));

  for (const auto& input : seeds) RunOne(input);
  std::fprintf(stderr, "driver: replayed %zu corpus input(s)\n",
               seeds.size());

  std::uint64_t state = seed ? seed : 1;
  std::vector<std::uint8_t> scratch;
  for (std::uint64_t r = 0; r < runs; ++r) {
    if (seeds.empty()) {
      scratch.clear();
      const std::size_t len = XorShift(state) % 256;
      for (std::size_t i = 0; i < len; ++i) {
        scratch.push_back(static_cast<std::uint8_t>(XorShift(state)));
      }
    } else {
      scratch = seeds[XorShift(state) % seeds.size()];
    }
    Mutate(scratch, state);
    RunOne(scratch);
  }
  std::fprintf(stderr, "driver: %llu mutation run(s) ok (seed %llu)\n",
               static_cast<unsigned long long>(runs),
               static_cast<unsigned long long>(seed));
  return 0;
}
