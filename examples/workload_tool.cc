// workload_tool: generate / inspect / solve set cover workload files.
//
// A small CLI over the library's generator + serialization + solver
// surface — the "data engineer" entry point. Workloads are stored in the
// documented ssc1 text format (see instance/serialization.h), so they can
// be produced once and replayed across benches, tests, and notebooks.
//
// Usage:
//   workload_tool gen <kind> <n> <m> <param> <seed> <path>
//       kind: planted (param = opt) | uniform (param = set size)
//           | zipf (param = max size) | blog (param = hub % as integer)
//   workload_tool info <path>
//   workload_tool solve <path> <alpha> [threads]
//       threads > 1 runs the pruning/projection passes on a
//       ParallelPassEngine pool (identical results for any count).
//
// Examples:
//   ./build/examples/workload_tool gen planted 4096 128 4 7 /tmp/w.ssc
//   ./build/examples/workload_tool info /tmp/w.ssc
//   ./build/examples/workload_tool solve /tmp/w.ssc 3 4

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "instance/serialization.h"
#include "offline/greedy.h"
#include "stream/parallel_pass_engine.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

int Usage() {
  std::cerr << "usage:\n"
            << "  workload_tool gen <planted|uniform|zipf|blog> <n> <m> "
               "<param> <seed> <path>\n"
            << "  workload_tool info <path>\n"
            << "  workload_tool solve <path> <alpha> [threads]\n";
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc != 8) return Usage();
  const std::string kind = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const std::size_t m = std::strtoull(argv[4], nullptr, 10);
  const std::size_t param = std::strtoull(argv[5], nullptr, 10);
  const std::uint64_t seed = std::strtoull(argv[6], nullptr, 10);
  const std::string path = argv[7];

  Rng rng(seed);
  SetSystem system(0);
  if (kind == "planted") {
    system = PlantedCoverInstance(n, m, param, rng);
  } else if (kind == "uniform") {
    system = UniformRandomInstance(n, m, param, rng);
  } else if (kind == "zipf") {
    system = ZipfInstance(n, m, 1.1, param, rng);
  } else if (kind == "blog") {
    system = BlogTopicInstance(n, m, static_cast<double>(param) / 100.0, rng);
  } else {
    return Usage();
  }

  const Status status = SaveSetSystem(system, path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << system.DebugString() << " to " << path << "\n";
  return 0;
}

int Info(int argc, char** argv) {
  if (argc != 3) return Usage();
  const StatusOr<SetSystem> loaded = LoadSetSystem(argv[2]);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status().ToString() << "\n";
    return 1;
  }
  const SetSystem& system = *loaded;
  Count min_size = system.universe_size(), max_size = 0;
  for (SetId id = 0; id < system.num_sets(); ++id) {
    const Count size = system.set(id).CountSet();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  TablePrinter table({"property", "value"});
  table.BeginRow();
  table.AddCell("universe n");
  table.AddCell(static_cast<std::uint64_t>(system.universe_size()));
  table.BeginRow();
  table.AddCell("sets m");
  table.AddCell(static_cast<std::uint64_t>(system.num_sets()));
  table.BeginRow();
  table.AddCell("incidences");
  table.AddCell(system.TotalIncidences());
  const SetSystem::Memory memory = system.MemoryUsage();
  table.BeginRow();
  table.AddCell("dense sets / bytes");
  table.AddCell(std::to_string(memory.dense_sets) + " / " +
                std::to_string(memory.dense_bytes));
  table.BeginRow();
  table.AddCell("sparse sets / bytes");
  table.AddCell(std::to_string(memory.sparse_sets) + " / " +
                std::to_string(memory.sparse_bytes));
  table.BeginRow();
  table.AddCell("min |S_i|");
  table.AddCell(min_size);
  table.BeginRow();
  table.AddCell("max |S_i|");
  table.AddCell(max_size);
  table.BeginRow();
  table.AddCell("coverable");
  table.AddCell(system.IsCoverable() ? "yes" : "NO");
  table.Print(std::cout);
  return 0;
}

int Solve(int argc, char** argv) {
  if (argc != 4 && argc != 5) return Usage();
  const StatusOr<SetSystem> loaded = LoadSetSystem(argv[2]);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status().ToString() << "\n";
    return 1;
  }
  const std::size_t alpha = std::strtoull(argv[3], nullptr, 10);
  if (alpha < 1) return Usage();
  const std::size_t threads =
      argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 1;

  AssadiConfig config;
  config.alpha = alpha;
  config.epsilon = 0.5;
  std::optional<ParallelPassEngine> engine;
  if (threads > 1) {
    engine.emplace(threads);
    config.engine = &*engine;
  }
  AssadiSetCover algorithm(config);
  VectorSetStream stream(*loaded);
  const SetCoverRunResult result = algorithm.Run(stream);

  const Solution greedy = GreedySetCover(*loaded);
  TablePrinter table({"solver", "sets", "passes", "space_bytes"});
  table.BeginRow();
  table.AddCell(algorithm.name());
  table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
  table.AddCell(result.stats.passes);
  table.AddCell(result.stats.peak_space_bytes);
  table.BeginRow();
  table.AddCell("offline greedy");
  table.AddCell(static_cast<std::uint64_t>(greedy.size()));
  table.AddCell(static_cast<std::uint64_t>(1));
  table.AddCell(static_cast<std::uint64_t>(loaded->TotalIncidences() * 4));
  table.Print(std::cout);
  if (!result.feasible) {
    std::cerr << "streaming solver did not find a feasible cover\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return Generate(argc, argv);
  if (command == "info") return Info(argc, argv);
  if (command == "solve") return Solve(argc, argv);
  return Usage();
}
