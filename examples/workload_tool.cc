// workload_tool: generate / inspect / convert / solve set cover workload
// files.
//
// A small CLI over the library's generator + serialization + storage +
// solver-API surface — the "data engineer" entry point. Workloads are
// stored either in the documented ssc1 text format
// (instance/serialization.h) or the sscb1 mmap-ready binary format
// (storage/binary_format.h); info and solve sniff the format from the
// file's magic bytes, so both kinds are interchangeable everywhere
// downstream.
//
// Solving goes through the unified solver API (api/solver_registry.h +
// api/solve_session.h): *any* registered solver, configured by key=value
// options, over *any* source. `solvers` prints the catalogue with each
// solver's option schema.
//
// Usage:
//   workload_tool gen <kind> <n> <m> <param> <seed> <path>
//       kind: planted (param = opt) | uniform (param = set size)
//           | zipf (param = max size) | blog (param = hub % as integer)
//   workload_tool convert <in.ssc> <out.sscb1>
//       streams the text instance into the binary store one set at a
//       time (constant memory; works for instances that don't fit RAM).
//   workload_tool info <path>
//   workload_tool solvers [--names]
//       lists every registered solver with its options (name, type,
//       range, default, doc) plus the session-level options; --names
//       prints bare registry keys one per line (for scripting).
//   workload_tool solve <path> <solver> [key=value ...] [--trace=FILE]
//                 [--stats]
//       e.g.: solve w.sscb1 assadi alpha=3 threads=4
//       `threads` is a session option: the SolveSession owns the
//       ParallelPassEngine for the run (identical results for any
//       count). Binary inputs stream through MmapSetStream, so
//       multi-pass solves cost zero re-parsing and shard even from
//       disk; text inputs stream one set at a time (and are loaded
//       into memory when threads > 1).
//       --trace=FILE arms a TraceRecorder for the run and writes a
//       chrome://tracing JSON file (per-pass and per-shard spans) plus
//       a per-pass breakdown table; --stats prints the run's counter
//       snapshot in Prometheus text format. Neither changes results.
//   workload_tool delta <base> <delta.sscd1> init
//   workload_tool delta <base> <delta.sscd1> add-uniform <count> <size> <seed>
//   workload_tool delta <base> <delta.sscd1> remove <slot>
//   workload_tool delta <base> <delta.sscd1> replace <slot> <size> <seed>
//       maintains an sscd1 delta log over a base instance (the dynamic-
//       instance path): init writes an empty log, the mutation verbs
//       append records. Slots are base order then append order.
//   workload_tool solve ... [--delta=FILE]
//       solves the live overlay (base + delta) instead of the base alone;
//       repeated solves in watch mode re-use the warm-start path.
//   workload_tool compact <base> <delta.sscd1> <out.sscb1>
//       materializes the live overlay into a fresh sscb1 (tombstones
//       dropped, ids densely renumbered — byte-compatible with what the
//       overlay streams).
//   workload_tool watch <base> <delta.sscd1> <solver> [key=value ...]
//                 [--interval-ms=N] [--max-solves=N] [--stats]
//       stat-polls base and delta (util/file_probe.h, no inotify): a
//       delta change re-reads the log and re-solves warm (surviving
//       prefix + residue re-cover); a base change reopens cold. Prints
//       one line per solve; --max-solves bounds the loop (for scripts),
//       --stats dumps the final counter snapshot.
//   workload_tool client <endpoint> ping
//   workload_tool client <endpoint> stats
//   workload_tool client <endpoint> shutdown
//   workload_tool client <endpoint> reload <instance> [<path>]
//       live-reloads the daemon's instance table: with a path, adds or
//       swaps the named instance; without, retires it. In-flight solves
//       finish on the old mapping.
//   workload_tool client <endpoint> solve <instance> <solver>
//                 [key=value ...] [--breakdown]
//       talks to a running workload_served daemon over its framed
//       socket protocol (serve/solve_client.h); endpoint is
//       unix:/path/to.sock or tcp:PORT. `solve` prints the marshalled
//       report exactly like the local command; --breakdown requests the
//       per-pass table (daemon must run with --trace). A busy daemon
//       answers UNAVAILABLE — retry later.
//
// Examples:
//   ./build/examples/workload_tool gen planted 4096 128 4 7 /tmp/w.ssc
//   ./build/examples/workload_tool convert /tmp/w.ssc /tmp/w.sscb1
//   ./build/examples/workload_tool solvers
//   ./build/examples/workload_tool solve /tmp/w.sscb1 assadi alpha=3 threads=4
//   ./build/examples/workload_tool solve /tmp/w.sscb1 threshold_greedy beta=4

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/solve_session.h"
#include "api/solver_registry.h"
#include "dynamic/delta_log.h"
#include "dynamic/overlay_set_stream.h"
#include "instance/generators.h"
#include "instance/serialization.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "serve/solve_client.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "stream/set_stream.h"
#include "util/file_probe.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

int Usage() {
  std::cerr
      << "usage:\n"
      << "  workload_tool gen <planted|uniform|zipf|blog> <n> <m> "
         "<param> <seed> <path>\n"
      << "  workload_tool convert <in.ssc> <out.sscb1>\n"
      << "  workload_tool info <path>\n"
      << "  workload_tool solvers [--names]\n"
      << "  workload_tool solve <path> <solver> [key=value ...] "
         "[--trace=FILE] [--stats] [--delta=FILE]\n"
      << "  workload_tool delta <base> <delta.sscd1> init\n"
      << "  workload_tool delta <base> <delta.sscd1> add-uniform <count> "
         "<size> <seed>\n"
      << "  workload_tool delta <base> <delta.sscd1> remove <slot>\n"
      << "  workload_tool delta <base> <delta.sscd1> replace <slot> <size> "
         "<seed>\n"
      << "  workload_tool compact <base> <delta.sscd1> <out.sscb1>\n"
      << "  workload_tool watch <base> <delta.sscd1> <solver> "
         "[key=value ...] [--interval-ms=N] [--max-solves=N] [--stats]\n"
      << "  workload_tool client <endpoint> "
         "<ping|stats|shutdown>\n"
      << "  workload_tool client <endpoint> reload <instance> [<path>]\n"
      << "  workload_tool client <endpoint> solve <instance> <solver> "
         "[key=value ...] [--breakdown]\n"
      << "run `workload_tool solvers` for solver names and their options\n";
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc != 8) return Usage();
  const std::string kind = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const std::size_t m = std::strtoull(argv[4], nullptr, 10);
  const std::size_t param = std::strtoull(argv[5], nullptr, 10);
  const std::uint64_t seed = std::strtoull(argv[6], nullptr, 10);
  const std::string path = argv[7];

  Rng rng(seed);
  SetSystem system(0);
  if (kind == "planted") {
    system = PlantedCoverInstance(n, m, param, rng);
  } else if (kind == "uniform") {
    system = UniformRandomInstance(n, m, param, rng);
  } else if (kind == "zipf") {
    system = ZipfInstance(n, m, 1.1, param, rng);
  } else if (kind == "blog") {
    system = BlogTopicInstance(n, m, static_cast<double>(param) / 100.0, rng);
  } else {
    return Usage();
  }

  const Status status = SaveSetSystem(system, path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << system.DebugString() << " to " << path << "\n";
  return 0;
}

int Convert(int argc, char** argv) {
  if (argc != 4) return Usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  if (IsBinaryInstanceFile(in_path)) {
    std::cerr << "convert: '" << in_path
              << "' is already an sscb1 binary instance\n";
    return 1;
  }
  const Status status =
      BinaryInstanceWriter::TranscodeText(in_path, out_path);
  if (!status.ok()) {
    std::cerr << "convert failed: " << status.ToString() << "\n";
    return 1;
  }
  MmapSetStream check(out_path);
  if (!check.status().ok()) {
    std::cerr << "convert verification failed: "
              << check.status().ToString() << "\n";
    return 1;
  }
  std::cout << "wrote SetSystem(n=" << check.universe_size()
            << ", m=" << check.num_sets() << ") to " << out_path << " ("
            << check.file_bytes() << " bytes, " << check.sparse_sets()
            << " sparse sets)\n";
  return 0;
}

int Info(int argc, char** argv) {
  if (argc != 3) return Usage();
  const std::string path = argv[2];
  std::optional<MmapSetStream> mmap_stream;
  std::optional<SetSystem> system;
  std::optional<VectorSetStream> vector_stream;
  SetStream* stream = nullptr;
  if (IsBinaryInstanceFile(path)) {
    mmap_stream.emplace(path);
    if (!mmap_stream->status().ok()) {
      std::cerr << "load failed: " << mmap_stream->status().ToString()
                << "\n";
      return 1;
    }
    stream = &*mmap_stream;
  } else {
    StatusOr<SetSystem> loaded = LoadSetSystem(path);
    if (!loaded.ok()) {
      std::cerr << "load failed: " << loaded.status().ToString() << "\n";
      return 1;
    }
    system.emplace(std::move(*loaded));
    vector_stream.emplace(*system);
    stream = &*vector_stream;
  }

  // One pass over the stream computes every statistic — works identically
  // for the in-memory and the disk-resident case.
  const std::size_t n = stream->universe_size();
  Count min_size = n, max_size = 0, incidences = 0;
  Bytes dense_bytes = 0, sparse_bytes = 0;
  std::size_t dense_sets = 0, sparse_sets = 0;
  DynamicBitset covered(n);
  StreamItem item;
  stream->BeginPass();
  while (stream->Next(&item)) {
    const Count size = item.set.CountSet();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    incidences += size;
    item.set.OrInto(covered);
    if (item.set.is_dense_rep()) {
      ++dense_sets;
      dense_bytes += item.set.ByteSize();
    } else {
      ++sparse_sets;
      sparse_bytes += item.set.ByteSize();
    }
  }

  TablePrinter table({"property", "value"});
  table.BeginRow();
  table.AddCell("format");
  table.AddCell(mmap_stream.has_value() ? "sscb1 (binary, mmap)"
                                        : "ssc1 (text)");
  table.BeginRow();
  table.AddCell("universe n");
  table.AddCell(static_cast<std::uint64_t>(n));
  table.BeginRow();
  table.AddCell("sets m");
  table.AddCell(static_cast<std::uint64_t>(stream->num_sets()));
  table.BeginRow();
  table.AddCell("incidences");
  table.AddCell(incidences);
  table.BeginRow();
  table.AddCell("dense sets / bytes");
  table.AddCell(std::to_string(dense_sets) + " / " +
                std::to_string(dense_bytes));
  table.BeginRow();
  table.AddCell("sparse sets / bytes");
  table.AddCell(std::to_string(sparse_sets) + " / " +
                std::to_string(sparse_bytes));
  if (mmap_stream.has_value()) {
    table.BeginRow();
    table.AddCell("file bytes");
    table.AddCell(mmap_stream->file_bytes());
  }
  table.BeginRow();
  table.AddCell("min |S_i|");
  table.AddCell(min_size);
  table.BeginRow();
  table.AddCell("max |S_i|");
  table.AddCell(max_size);
  table.BeginRow();
  table.AddCell("coverable");
  table.AddCell(covered.All() ? "yes" : "NO");
  table.Print(std::cout);
  return 0;
}

// Prints one solver's option schema (shared by `solvers` for each entry
// and by the session-options footer).
void PrintOptionTable(const std::vector<OptionDescriptor>& options) {
  TablePrinter table({"option", "type", "range", "default", "doc"});
  for (const OptionDescriptor& desc : options) {
    table.BeginRow();
    table.AddCell(desc.name);
    table.AddCell(OptionTypeName(desc.type));
    table.AddCell(desc.RangeText());
    table.AddCell(desc.DefaultText());
    table.AddCell(desc.doc);
  }
  table.Print(std::cout);
}

int Solvers(int argc, char** argv) {
  if (argc > 3) return Usage();
  const bool names_only = argc == 3 && std::string(argv[2]) == "--names";
  if (argc == 3 && !names_only) return Usage();

  const SolverRegistry& registry = SolverRegistry::Global();
  if (names_only) {
    for (const std::string& name : registry.Names()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  for (const std::string& name : registry.Names()) {
    const SolverInfo* info = registry.Find(name);
    std::cout << name << "  [" << SolverKindName(info->kind) << "]\n  "
              << info->summary << "\n";
    PrintOptionTable(info->options);
    std::cout << "\n";
  }
  std::cout << "session options (accepted alongside any solver's):\n";
  PrintOptionTable(SolveSession::SessionOptions());
  return 0;
}

// A uniform random size-k subset of [0, n) as an owning bitset.
DynamicBitset RandomSubset(std::size_t n, std::size_t k, Rng& rng) {
  DynamicBitset set(n);
  if (k > n) k = n;
  while (set.CountSet() < k) {
    set.Set(static_cast<ElementId>(rng.UniformInt(n)));
  }
  return set;
}

int Delta(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string base_path = argv[2];
  const std::string delta_path = argv[3];
  const std::string op = argv[4];

  if (op == "init") {
    if (argc != 5) return Usage();
    // Sniff the base (sscb1 or ssc1) just for its dimensions.
    StatusOr<SolveSession> base = SolveSession::Open(base_path);
    if (!base.ok()) {
      std::cerr << "delta init: base open failed: "
                << base.status().ToString() << "\n";
      return 1;
    }
    DeltaLogWriter writer(delta_path, base->universe_size(),
                          base->num_sets());
    const Status finished =
        writer.status().ok() ? writer.Finish() : writer.status();
    if (!finished.ok()) {
      std::cerr << "delta init failed: " << finished.ToString() << "\n";
      return 1;
    }
    std::cout << "wrote empty delta log (n=" << base->universe_size()
              << ", base m=" << base->num_sets() << ") to " << delta_path
              << "\n";
    return 0;
  }

  // Mutation verbs extend the existing log; its header carries the base
  // dimensions, so the base file itself is not re-read here.
  DeltaLogWriter writer(delta_path);
  if (!writer.status().ok()) {
    std::cerr << "delta: cannot append to '" << delta_path
              << "': " << writer.status().ToString() << "\n";
    return 1;
  }
  if (op == "add-uniform") {
    if (argc != 8) return Usage();
    const std::size_t count = std::strtoull(argv[5], nullptr, 10);
    const std::size_t size = std::strtoull(argv[6], nullptr, 10);
    Rng rng(std::strtoull(argv[7], nullptr, 10));
    for (std::size_t i = 0; i < count; ++i) {
      const DynamicBitset set =
          RandomSubset(writer.universe_size(), size, rng);
      if (!writer.AddSet(set).ok()) break;
    }
  } else if (op == "remove") {
    if (argc != 6) return Usage();
    (void)writer.RemoveSet(std::strtoull(argv[5], nullptr, 10));
  } else if (op == "replace") {
    if (argc != 8) return Usage();
    const std::uint64_t slot = std::strtoull(argv[5], nullptr, 10);
    const std::size_t size = std::strtoull(argv[6], nullptr, 10);
    Rng rng(std::strtoull(argv[7], nullptr, 10));
    (void)writer.ReplaceSet(slot,
                            RandomSubset(writer.universe_size(), size, rng));
  } else {
    return Usage();
  }
  const Status finished =
      writer.status().ok() ? writer.Finish() : writer.status();
  if (!finished.ok()) {
    std::cerr << "delta " << op << " failed: " << finished.ToString()
              << "\n";
    return 1;
  }
  std::cout << delta_path << ": " << writer.record_count() << " record(s), "
            << writer.num_slots() << " slot(s)\n";
  return 0;
}

int Compact(int argc, char** argv) {
  if (argc != 5) return Usage();
  OverlaySetStream overlay(argv[2], argv[3]);
  if (!overlay.status().ok()) {
    std::cerr << "compact: overlay open failed: "
              << overlay.status().ToString() << "\n";
    return 1;
  }
  const std::string out_path = argv[4];
  const Status written = overlay.Materialize(out_path);
  if (!written.ok()) {
    std::cerr << "compact failed: " << written.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote SetSystem(n=" << overlay.universe_size()
            << ", m=" << overlay.num_sets() << ") to " << out_path << " ("
            << overlay.delta_records() << " delta record(s) folded in, "
            << (overlay.num_slots() - overlay.num_sets())
            << " tombstone(s) dropped)\n";
  return 0;
}

int Watch(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string base_path = argv[2];
  const std::string delta_path = argv[3];
  const std::string solver = argv[4];
  long interval_ms = 200;
  std::uint64_t max_solves = 0;  // 0 = run until killed
  bool print_stats = false;
  std::vector<std::string> args;
  for (int i = 5; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--interval-ms=", 0) == 0) {
      interval_ms = std::strtol(arg.c_str() + 14, nullptr, 10);
      if (interval_ms <= 0) return Usage();
    } else if (arg.rfind("--max-solves=", 0) == 0) {
      max_solves = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      args.push_back(arg);
    }
  }

  StatusOr<SolveSession> session =
      SolveSession::OpenOverlay(base_path, delta_path);
  if (!session.ok()) {
    std::cerr << "watch: overlay open failed: "
              << session.status().ToString() << "\n";
    return 1;
  }

  CounterSet accumulated;
  std::uint64_t solves = 0;
  const auto solve_once = [&](const char* why) -> bool {
    StatusOr<SolveReport> report = session->Solve(solver, args);
    if (!report.ok()) {
      std::cerr << "watch: solve failed: " << report.status().ToString()
                << "\n";
      return false;
    }
    accumulated.MergeFrom(report->counters);
    ++solves;
    std::cout << "solve #" << solves << " [" << why << "] "
              << (report->warm_start ? "warm" : "cold")
              << " sets=" << report->solution.size()
              << " surviving=" << report->surviving_prefix
              << " residue=" << report->residue_elements
              << " passes=" << report->passes
              << " feasible=" << (report->feasible ? "yes" : "NO")
              << " wall_ms=" << report->wall_seconds * 1e3 << "\n";
    std::cout.flush();
    return true;
  };

  if (!solve_once("open")) return 1;
  FileSignature base_sig = ProbeSignature(base_path);
  FileSignature delta_sig = ProbeSignature(delta_path);
  while (max_solves == 0 || solves < max_solves) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const FileSignature base_now = ProbeSignature(base_path);
    const FileSignature delta_now = ProbeSignature(delta_path);
    const bool base_changed = base_now != base_sig;
    const bool delta_changed = delta_now != delta_sig;
    if (!base_changed && !delta_changed) continue;
    if (base_changed) {
      // The base file itself was replaced: the previous composition is
      // void. Reopen from scratch (cold solve, fresh memo).
      StatusOr<SolveSession> reopened =
          SolveSession::OpenOverlay(base_path, delta_path);
      if (!reopened.ok()) {
        std::cerr << "watch: base reopen deferred: "
                  << reopened.status().ToString() << "\n";
        continue;
      }
      session = std::move(reopened);
    } else {
      // Delta-only change: re-read the log in place, keeping the memo so
      // the next solve is warm-eligible.
      const Status refreshed = session->RefreshDelta();
      if (!refreshed.ok()) {
        // Likely a torn mid-write poll: try again next tick.
        std::cerr << "watch: delta refresh deferred: "
                  << refreshed.ToString() << "\n";
        continue;
      }
    }
    base_sig = base_now;
    delta_sig = delta_now;
    if (!solve_once(base_changed ? "base-change" : "delta-change")) return 1;
  }

  if (print_stats) {
    std::cout << "\n";
    WritePrometheusStats(std::cout, accumulated);
  }
  return 0;
}

int Solve(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string path = argv[2];
  const std::string solver = argv[3];
  std::string trace_path;
  std::string delta_path;
  bool print_stats = false;
  std::vector<std::string> args;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) return Usage();
    } else if (arg.rfind("--delta=", 0) == 0) {
      delta_path = arg.substr(8);
      if (delta_path.empty()) return Usage();
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      args.push_back(arg);
    }
  }

  StatusOr<SolveSession> session =
      delta_path.empty() ? SolveSession::Open(path)
                         : SolveSession::OpenOverlay(path, delta_path);
  if (!session.ok()) {
    std::cerr << "open failed: " << session.status().ToString() << "\n";
    return 1;
  }
  // The recorder allocates all its ring capacity here, at arm time; the
  // run itself then emits lock-free and alloc-free.
  std::optional<TraceRecorder> recorder;
  if (!trace_path.empty()) {
    recorder.emplace();
    session->BindTrace(&*recorder);
  }
  StatusOr<SolveReport> report = session->Solve(solver, args);
  if (!report.ok()) {
    std::cerr << "solve failed: " << report.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"property", "value"});
  const auto add = [&](const std::string& key, const std::string& value) {
    table.BeginRow();
    table.AddCell(key);
    table.AddCell(value);
  };
  add("solver", report->solver);
  add("algorithm", report->algorithm);
  add("kind", SolverKindName(report->kind));
  add("source", report->source);
  add("threads", std::to_string(report->threads));
  add("sets chosen", std::to_string(report->solution.size()));
  add(report->kind == SolverKind::kPairFinder ? "found" : "feasible",
      report->feasible ? "yes" : "NO");
  add("passes", std::to_string(report->passes));
  add("space bytes", std::to_string(report->peak_space_bytes));
  add("arena high-water", std::to_string(report->arena_high_water));
  add("arena reserved", std::to_string(report->arena_reserved));
  add("sets taken (ctr)", std::to_string(report->stats.sets_taken));
  add("elements covered", std::to_string(report->stats.elements_covered));
  if (report->kind == SolverKind::kMaxCoverage) {
    add("coverage", std::to_string(report->extra));
  }
  if (report->kind == SolverKind::kPairFinder) {
    add("candidates(p1)", std::to_string(report->extra));
  }
  add("wall ms", std::to_string(report->wall_seconds * 1e3));
  table.Print(std::cout);

  if (!report->pass_breakdown.empty()) {
    std::cout << "\nper-pass breakdown:\n";
    TablePrinter passes(
        {"pass", "name", "items", "shards", "takes", "covered", "wall ms"});
    std::size_t index = 0;
    for (const PassBreakdownRow& row : report->pass_breakdown) {
      passes.BeginRow();
      passes.AddCell(static_cast<std::uint64_t>(index++));
      passes.AddCell(row.name);
      passes.AddCell(row.items_scanned);
      passes.AddCell(row.shard_jobs);
      passes.AddCell(row.sets_taken);
      passes.AddCell(row.elements_covered);
      passes.AddCell(std::to_string(row.wall_seconds * 1e3));
    }
    passes.Print(std::cout);
  }

  if (print_stats) {
    std::cout << "\n";
    WritePrometheusStats(std::cout, report->counters);
  }

  if (recorder.has_value()) {
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "trace: cannot open '" << trace_path
                << "' for writing\n";
      return 1;
    }
    recorder->WriteChromeTrace(out);
    if (!out.flush()) {
      std::cerr << "trace: write to '" << trace_path << "' failed\n";
      return 1;
    }
    std::cout << "\nwrote " << recorder->events_recorded()
              << " trace events to " << trace_path;
    if (recorder->events_dropped() > 0) {
      std::cout << " (" << recorder->events_dropped()
                << " dropped: ring overflow)";
    }
    std::cout << "\n";
  }

  if (!report->feasible) {
    std::cerr << "solver did not find a "
              << (report->kind == SolverKind::kPairFinder
                      ? "covering pair"
                      : "feasible solution")
              << "\n";
    return 1;
  }
  return 0;
}

// Prints a daemon-marshalled report in the same table shape as the
// local `solve` command (fields the wire carries; engine counters come
// from the marshalled snapshot rather than the scalar stats view).
int PrintRemoteReport(const serve::SolveResponse& report) {
  TablePrinter table({"property", "value"});
  const auto add = [&](const std::string& key, const std::string& value) {
    table.BeginRow();
    table.AddCell(key);
    table.AddCell(value);
  };
  add("solver", report.solver);
  add("algorithm", report.algorithm);
  add("kind", SolverKindName(report.kind));
  add("source", report.source);
  add("sets chosen", std::to_string(report.solution.size()));
  add(report.kind == SolverKind::kPairFinder ? "found" : "feasible",
      report.feasible ? "yes" : "NO");
  add("passes", std::to_string(report.passes));
  add("space bytes", std::to_string(report.peak_space_bytes));
  add("arena high-water", std::to_string(report.arena_high_water));
  if (report.kind == SolverKind::kMaxCoverage) {
    add("coverage", std::to_string(report.extra));
  }
  if (report.kind == SolverKind::kPairFinder) {
    add("candidates(p1)", std::to_string(report.extra));
  }
  add("wall ms", std::to_string(static_cast<double>(report.wall_ns) * 1e-6));
  table.Print(std::cout);

  if (!report.counters.empty()) {
    std::cout << "\ncounters:\n";
    TablePrinter counters({"counter", "kind", "value"});
    for (const serve::WireCounter& counter : report.counters) {
      counters.BeginRow();
      counters.AddCell(counter.name);
      counters.AddCell(CounterKindName(counter.kind));
      counters.AddCell(counter.value);
    }
    counters.Print(std::cout);
  }

  if (!report.breakdown.empty()) {
    std::cout << "\nper-pass breakdown:\n";
    TablePrinter passes(
        {"pass", "name", "items", "shards", "takes", "covered", "wall ms"});
    std::size_t index = 0;
    for (const serve::WireBreakdownRow& row : report.breakdown) {
      passes.BeginRow();
      passes.AddCell(static_cast<std::uint64_t>(index++));
      passes.AddCell(row.name);
      passes.AddCell(row.items_scanned);
      passes.AddCell(row.shard_jobs);
      passes.AddCell(row.sets_taken);
      passes.AddCell(row.elements_covered);
      passes.AddCell(std::to_string(static_cast<double>(row.wall_ns) * 1e-6));
    }
    passes.Print(std::cout);
  }

  if (!report.feasible) {
    std::cerr << "solver did not find a "
              << (report.kind == SolverKind::kPairFinder
                      ? "covering pair"
                      : "feasible solution")
              << "\n";
    return 1;
  }
  return 0;
}

int Client(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string endpoint = argv[2];
  const std::string verb = argv[3];

  StatusOr<serve::SolveClient> client = serve::SolveClient::Connect(endpoint);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }

  if (verb == "ping") {
    const Status status = client->Ping();
    if (!status.ok()) {
      std::cerr << "ping failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "pong\n";
    return 0;
  }
  if (verb == "stats") {
    StatusOr<std::string> stats = client->Stats();
    if (!stats.ok()) {
      std::cerr << "stats failed: " << stats.status().ToString() << "\n";
      return 1;
    }
    std::cout << *stats;
    return 0;
  }
  if (verb == "shutdown") {
    const Status status = client->Shutdown();
    if (!status.ok()) {
      std::cerr << "shutdown failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "daemon stopping\n";
    return 0;
  }
  if (verb == "reload") {
    if (argc < 5 || argc > 6) return Usage();
    const std::string name = argv[4];
    const std::string path = argc == 6 ? argv[5] : "";
    const Status status = client->Reload(name, path);
    if (!status.ok()) {
      std::cerr << "reload failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << (path.empty() ? "retired " : "reloaded ") << name << "\n";
    return 0;
  }
  if (verb == "solve") {
    if (argc < 6) return Usage();
    const std::string instance = argv[4];
    const std::string solver = argv[5];
    bool want_breakdown = false;
    std::vector<std::string> args;
    for (int i = 6; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--breakdown") {
        want_breakdown = true;
      } else {
        args.push_back(arg);
      }
    }
    StatusOr<serve::SolveResponse> report =
        client->Solve(instance, solver, args, want_breakdown);
    if (!report.ok()) {
      std::cerr << "solve failed: " << report.status().ToString() << "\n";
      return 1;
    }
    return PrintRemoteReport(*report);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return Generate(argc, argv);
  if (command == "convert") return Convert(argc, argv);
  if (command == "info") return Info(argc, argv);
  if (command == "solvers") return Solvers(argc, argv);
  if (command == "solve") return Solve(argc, argv);
  if (command == "delta") return Delta(argc, argv);
  if (command == "compact") return Compact(argc, argv);
  if (command == "watch") return Watch(argc, argv);
  if (command == "client") return Client(argc, argv);
  return Usage();
}
