// workload_tool: generate / inspect / convert / solve set cover workload
// files.
//
// A small CLI over the library's generator + serialization + storage +
// solver surface — the "data engineer" entry point. Workloads are stored
// either in the documented ssc1 text format (instance/serialization.h) or
// the sscb1 mmap-ready binary format (storage/binary_format.h); info and
// solve sniff the format from the file's magic bytes, so both kinds are
// interchangeable everywhere downstream.
//
// Usage:
//   workload_tool gen <kind> <n> <m> <param> <seed> <path>
//       kind: planted (param = opt) | uniform (param = set size)
//           | zipf (param = max size) | blog (param = hub % as integer)
//   workload_tool convert <in.ssc> <out.sscb1>
//       streams the text instance into the binary store one set at a
//       time (constant memory; works for instances that don't fit RAM).
//   workload_tool info <path>
//   workload_tool solve <path> <alpha> [threads]
//       threads > 1 runs the pruning/projection passes on a
//       ParallelPassEngine pool (identical results for any count).
//       Binary inputs stream through MmapSetStream, so multi-pass solves
//       cost zero re-parsing and can use the pool even from disk.
//
// Examples:
//   ./build/examples/workload_tool gen planted 4096 128 4 7 /tmp/w.ssc
//   ./build/examples/workload_tool convert /tmp/w.ssc /tmp/w.sscb1
//   ./build/examples/workload_tool info /tmp/w.sscb1
//   ./build/examples/workload_tool solve /tmp/w.sscb1 3 4

#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "instance/serialization.h"
#include "offline/greedy.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "stream/engine_context.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

int Usage() {
  std::cerr << "usage:\n"
            << "  workload_tool gen <planted|uniform|zipf|blog> <n> <m> "
               "<param> <seed> <path>\n"
            << "  workload_tool convert <in.ssc> <out.sscb1>\n"
            << "  workload_tool info <path>\n"
            << "  workload_tool solve <path> <alpha> [threads]\n";
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc != 8) return Usage();
  const std::string kind = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const std::size_t m = std::strtoull(argv[4], nullptr, 10);
  const std::size_t param = std::strtoull(argv[5], nullptr, 10);
  const std::uint64_t seed = std::strtoull(argv[6], nullptr, 10);
  const std::string path = argv[7];

  Rng rng(seed);
  SetSystem system(0);
  if (kind == "planted") {
    system = PlantedCoverInstance(n, m, param, rng);
  } else if (kind == "uniform") {
    system = UniformRandomInstance(n, m, param, rng);
  } else if (kind == "zipf") {
    system = ZipfInstance(n, m, 1.1, param, rng);
  } else if (kind == "blog") {
    system = BlogTopicInstance(n, m, static_cast<double>(param) / 100.0, rng);
  } else {
    return Usage();
  }

  const Status status = SaveSetSystem(system, path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << system.DebugString() << " to " << path << "\n";
  return 0;
}

int Convert(int argc, char** argv) {
  if (argc != 4) return Usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  if (IsBinaryInstanceFile(in_path)) {
    std::cerr << "convert: '" << in_path
              << "' is already an sscb1 binary instance\n";
    return 1;
  }
  const Status status =
      BinaryInstanceWriter::TranscodeText(in_path, out_path);
  if (!status.ok()) {
    std::cerr << "convert failed: " << status.ToString() << "\n";
    return 1;
  }
  MmapSetStream check(out_path);
  if (!check.status().ok()) {
    std::cerr << "convert verification failed: "
              << check.status().ToString() << "\n";
    return 1;
  }
  std::cout << "wrote SetSystem(n=" << check.universe_size()
            << ", m=" << check.num_sets() << ") to " << out_path << " ("
            << check.file_bytes() << " bytes, " << check.sparse_sets()
            << " sparse sets)\n";
  return 0;
}

// Opens either format as a SetStream. Exactly one of the two out-params
// is filled; the returned pointer views it.
SetStream* OpenStream(const std::string& path,
                      std::optional<MmapSetStream>& mmap_stream,
                      std::optional<SetSystem>& system,
                      std::optional<VectorSetStream>& vector_stream) {
  if (IsBinaryInstanceFile(path)) {
    mmap_stream.emplace(path);
    if (!mmap_stream->status().ok()) {
      std::cerr << "load failed: " << mmap_stream->status().ToString() << "\n";
      return nullptr;
    }
    return &*mmap_stream;
  }
  StatusOr<SetSystem> loaded = LoadSetSystem(path);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status().ToString() << "\n";
    return nullptr;
  }
  system.emplace(std::move(*loaded));
  vector_stream.emplace(*system);
  return &*vector_stream;
}

int Info(int argc, char** argv) {
  if (argc != 3) return Usage();
  const std::string path = argv[2];
  std::optional<MmapSetStream> mmap_stream;
  std::optional<SetSystem> system;
  std::optional<VectorSetStream> vector_stream;
  SetStream* stream = OpenStream(path, mmap_stream, system, vector_stream);
  if (stream == nullptr) return 1;

  // One pass over the stream computes every statistic — works identically
  // for the in-memory and the disk-resident case.
  const std::size_t n = stream->universe_size();
  Count min_size = n, max_size = 0, incidences = 0;
  Bytes dense_bytes = 0, sparse_bytes = 0;
  std::size_t dense_sets = 0, sparse_sets = 0;
  DynamicBitset covered(n);
  StreamItem item;
  stream->BeginPass();
  while (stream->Next(&item)) {
    const Count size = item.set.CountSet();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    incidences += size;
    item.set.OrInto(covered);
    if (item.set.is_dense_rep()) {
      ++dense_sets;
      dense_bytes += item.set.ByteSize();
    } else {
      ++sparse_sets;
      sparse_bytes += item.set.ByteSize();
    }
  }

  TablePrinter table({"property", "value"});
  table.BeginRow();
  table.AddCell("format");
  table.AddCell(mmap_stream.has_value() ? "sscb1 (binary, mmap)"
                                        : "ssc1 (text)");
  table.BeginRow();
  table.AddCell("universe n");
  table.AddCell(static_cast<std::uint64_t>(n));
  table.BeginRow();
  table.AddCell("sets m");
  table.AddCell(static_cast<std::uint64_t>(stream->num_sets()));
  table.BeginRow();
  table.AddCell("incidences");
  table.AddCell(incidences);
  table.BeginRow();
  table.AddCell("dense sets / bytes");
  table.AddCell(std::to_string(dense_sets) + " / " +
                std::to_string(dense_bytes));
  table.BeginRow();
  table.AddCell("sparse sets / bytes");
  table.AddCell(std::to_string(sparse_sets) + " / " +
                std::to_string(sparse_bytes));
  if (mmap_stream.has_value()) {
    table.BeginRow();
    table.AddCell("file bytes");
    table.AddCell(mmap_stream->file_bytes());
  }
  table.BeginRow();
  table.AddCell("min |S_i|");
  table.AddCell(min_size);
  table.BeginRow();
  table.AddCell("max |S_i|");
  table.AddCell(max_size);
  table.BeginRow();
  table.AddCell("coverable");
  table.AddCell(covered.All() ? "yes" : "NO");
  table.Print(std::cout);
  return 0;
}

int Solve(int argc, char** argv) {
  if (argc != 4 && argc != 5) return Usage();
  const std::string path = argv[2];
  const std::size_t alpha = std::strtoull(argv[3], nullptr, 10);
  if (alpha < 1) return Usage();
  const std::size_t threads =
      argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 1;
  if (threads < 1) return Usage();

  std::optional<MmapSetStream> mmap_stream;
  std::optional<SetSystem> system;
  std::optional<VectorSetStream> vector_stream;
  SetStream* stream = OpenStream(path, mmap_stream, system, vector_stream);
  if (stream == nullptr) return 1;

  AssadiConfig config;
  config.alpha = alpha;
  config.epsilon = 0.5;
  // MakeEngine owns the thread-count policy: 1 means the sequential path
  // (null engine); 0 is rejected loudly rather than guessed at.
  const std::unique_ptr<ParallelPassEngine> engine = MakeEngine(threads);
  config.engine = engine.get();
  AssadiSetCover algorithm(config);
  const SetCoverRunResult result = algorithm.Run(*stream);

  // The offline greedy comparison needs random access; materialize the
  // binary instance only for this step.
  if (!system.has_value()) {
    StatusOr<SetSystem> loaded = LoadBinarySetSystem(path);
    if (!loaded.ok()) {
      std::cerr << "load failed: " << loaded.status().ToString() << "\n";
      return 1;
    }
    system.emplace(std::move(*loaded));
  }
  const Solution greedy = GreedySetCover(*system);

  TablePrinter table({"solver", "sets", "passes", "space_bytes"});
  table.BeginRow();
  table.AddCell(algorithm.name());
  table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
  table.AddCell(result.stats.passes);
  table.AddCell(result.stats.peak_space_bytes);
  table.BeginRow();
  table.AddCell("offline greedy");
  table.AddCell(static_cast<std::uint64_t>(greedy.size()));
  table.AddCell(static_cast<std::uint64_t>(1));
  table.AddCell(static_cast<std::uint64_t>(system->TotalIncidences() * 4));
  table.Print(std::cout);
  if (!result.feasible) {
    std::cerr << "streaming solver did not find a feasible cover\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return Generate(argc, argv);
  if (command == "convert") return Convert(argc, argv);
  if (command == "info") return Info(argc, argv);
  if (command == "solve") return Solve(argc, argv);
  return Usage();
}
