// workload_tool: generate / inspect / convert / solve set cover workload
// files.
//
// A small CLI over the library's generator + serialization + storage +
// solver-API surface — the "data engineer" entry point. Workloads are
// stored either in the documented ssc1 text format
// (instance/serialization.h) or the sscb1 mmap-ready binary format
// (storage/binary_format.h); info and solve sniff the format from the
// file's magic bytes, so both kinds are interchangeable everywhere
// downstream.
//
// Solving goes through the unified solver API (api/solver_registry.h +
// api/solve_session.h): *any* registered solver, configured by key=value
// options, over *any* source. `solvers` prints the catalogue with each
// solver's option schema.
//
// Usage:
//   workload_tool gen <kind> <n> <m> <param> <seed> <path>
//       kind: planted (param = opt) | uniform (param = set size)
//           | zipf (param = max size) | blog (param = hub % as integer)
//   workload_tool convert <in.ssc> <out.sscb1>
//       streams the text instance into the binary store one set at a
//       time (constant memory; works for instances that don't fit RAM).
//   workload_tool info <path>
//   workload_tool solvers [--names]
//       lists every registered solver with its options (name, type,
//       range, default, doc) plus the session-level options; --names
//       prints bare registry keys one per line (for scripting).
//   workload_tool solve <path> <solver> [key=value ...] [--trace=FILE]
//                 [--stats]
//       e.g.: solve w.sscb1 assadi alpha=3 threads=4
//       `threads` is a session option: the SolveSession owns the
//       ParallelPassEngine for the run (identical results for any
//       count). Binary inputs stream through MmapSetStream, so
//       multi-pass solves cost zero re-parsing and shard even from
//       disk; text inputs stream one set at a time (and are loaded
//       into memory when threads > 1).
//       --trace=FILE arms a TraceRecorder for the run and writes a
//       chrome://tracing JSON file (per-pass and per-shard spans) plus
//       a per-pass breakdown table; --stats prints the run's counter
//       snapshot in Prometheus text format. Neither changes results.
//   workload_tool client <endpoint> ping
//   workload_tool client <endpoint> stats
//   workload_tool client <endpoint> shutdown
//   workload_tool client <endpoint> solve <instance> <solver>
//                 [key=value ...] [--breakdown]
//       talks to a running workload_served daemon over its framed
//       socket protocol (serve/solve_client.h); endpoint is
//       unix:/path/to.sock or tcp:PORT. `solve` prints the marshalled
//       report exactly like the local command; --breakdown requests the
//       per-pass table (daemon must run with --trace). A busy daemon
//       answers UNAVAILABLE — retry later.
//
// Examples:
//   ./build/examples/workload_tool gen planted 4096 128 4 7 /tmp/w.ssc
//   ./build/examples/workload_tool convert /tmp/w.ssc /tmp/w.sscb1
//   ./build/examples/workload_tool solvers
//   ./build/examples/workload_tool solve /tmp/w.sscb1 assadi alpha=3 threads=4
//   ./build/examples/workload_tool solve /tmp/w.sscb1 threshold_greedy beta=4

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/solve_session.h"
#include "api/solver_registry.h"
#include "instance/generators.h"
#include "instance/serialization.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "serve/solve_client.h"
#include "storage/binary_instance_writer.h"
#include "storage/mmap_set_stream.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

namespace {

using namespace streamsc;

int Usage() {
  std::cerr
      << "usage:\n"
      << "  workload_tool gen <planted|uniform|zipf|blog> <n> <m> "
         "<param> <seed> <path>\n"
      << "  workload_tool convert <in.ssc> <out.sscb1>\n"
      << "  workload_tool info <path>\n"
      << "  workload_tool solvers [--names]\n"
      << "  workload_tool solve <path> <solver> [key=value ...] "
         "[--trace=FILE] [--stats]\n"
      << "  workload_tool client <endpoint> "
         "<ping|stats|shutdown>\n"
      << "  workload_tool client <endpoint> solve <instance> <solver> "
         "[key=value ...] [--breakdown]\n"
      << "run `workload_tool solvers` for solver names and their options\n";
  return 2;
}

int Generate(int argc, char** argv) {
  if (argc != 8) return Usage();
  const std::string kind = argv[2];
  const std::size_t n = std::strtoull(argv[3], nullptr, 10);
  const std::size_t m = std::strtoull(argv[4], nullptr, 10);
  const std::size_t param = std::strtoull(argv[5], nullptr, 10);
  const std::uint64_t seed = std::strtoull(argv[6], nullptr, 10);
  const std::string path = argv[7];

  Rng rng(seed);
  SetSystem system(0);
  if (kind == "planted") {
    system = PlantedCoverInstance(n, m, param, rng);
  } else if (kind == "uniform") {
    system = UniformRandomInstance(n, m, param, rng);
  } else if (kind == "zipf") {
    system = ZipfInstance(n, m, 1.1, param, rng);
  } else if (kind == "blog") {
    system = BlogTopicInstance(n, m, static_cast<double>(param) / 100.0, rng);
  } else {
    return Usage();
  }

  const Status status = SaveSetSystem(system, path);
  if (!status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << system.DebugString() << " to " << path << "\n";
  return 0;
}

int Convert(int argc, char** argv) {
  if (argc != 4) return Usage();
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  if (IsBinaryInstanceFile(in_path)) {
    std::cerr << "convert: '" << in_path
              << "' is already an sscb1 binary instance\n";
    return 1;
  }
  const Status status =
      BinaryInstanceWriter::TranscodeText(in_path, out_path);
  if (!status.ok()) {
    std::cerr << "convert failed: " << status.ToString() << "\n";
    return 1;
  }
  MmapSetStream check(out_path);
  if (!check.status().ok()) {
    std::cerr << "convert verification failed: "
              << check.status().ToString() << "\n";
    return 1;
  }
  std::cout << "wrote SetSystem(n=" << check.universe_size()
            << ", m=" << check.num_sets() << ") to " << out_path << " ("
            << check.file_bytes() << " bytes, " << check.sparse_sets()
            << " sparse sets)\n";
  return 0;
}

int Info(int argc, char** argv) {
  if (argc != 3) return Usage();
  const std::string path = argv[2];
  std::optional<MmapSetStream> mmap_stream;
  std::optional<SetSystem> system;
  std::optional<VectorSetStream> vector_stream;
  SetStream* stream = nullptr;
  if (IsBinaryInstanceFile(path)) {
    mmap_stream.emplace(path);
    if (!mmap_stream->status().ok()) {
      std::cerr << "load failed: " << mmap_stream->status().ToString()
                << "\n";
      return 1;
    }
    stream = &*mmap_stream;
  } else {
    StatusOr<SetSystem> loaded = LoadSetSystem(path);
    if (!loaded.ok()) {
      std::cerr << "load failed: " << loaded.status().ToString() << "\n";
      return 1;
    }
    system.emplace(std::move(*loaded));
    vector_stream.emplace(*system);
    stream = &*vector_stream;
  }

  // One pass over the stream computes every statistic — works identically
  // for the in-memory and the disk-resident case.
  const std::size_t n = stream->universe_size();
  Count min_size = n, max_size = 0, incidences = 0;
  Bytes dense_bytes = 0, sparse_bytes = 0;
  std::size_t dense_sets = 0, sparse_sets = 0;
  DynamicBitset covered(n);
  StreamItem item;
  stream->BeginPass();
  while (stream->Next(&item)) {
    const Count size = item.set.CountSet();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    incidences += size;
    item.set.OrInto(covered);
    if (item.set.is_dense_rep()) {
      ++dense_sets;
      dense_bytes += item.set.ByteSize();
    } else {
      ++sparse_sets;
      sparse_bytes += item.set.ByteSize();
    }
  }

  TablePrinter table({"property", "value"});
  table.BeginRow();
  table.AddCell("format");
  table.AddCell(mmap_stream.has_value() ? "sscb1 (binary, mmap)"
                                        : "ssc1 (text)");
  table.BeginRow();
  table.AddCell("universe n");
  table.AddCell(static_cast<std::uint64_t>(n));
  table.BeginRow();
  table.AddCell("sets m");
  table.AddCell(static_cast<std::uint64_t>(stream->num_sets()));
  table.BeginRow();
  table.AddCell("incidences");
  table.AddCell(incidences);
  table.BeginRow();
  table.AddCell("dense sets / bytes");
  table.AddCell(std::to_string(dense_sets) + " / " +
                std::to_string(dense_bytes));
  table.BeginRow();
  table.AddCell("sparse sets / bytes");
  table.AddCell(std::to_string(sparse_sets) + " / " +
                std::to_string(sparse_bytes));
  if (mmap_stream.has_value()) {
    table.BeginRow();
    table.AddCell("file bytes");
    table.AddCell(mmap_stream->file_bytes());
  }
  table.BeginRow();
  table.AddCell("min |S_i|");
  table.AddCell(min_size);
  table.BeginRow();
  table.AddCell("max |S_i|");
  table.AddCell(max_size);
  table.BeginRow();
  table.AddCell("coverable");
  table.AddCell(covered.All() ? "yes" : "NO");
  table.Print(std::cout);
  return 0;
}

// Prints one solver's option schema (shared by `solvers` for each entry
// and by the session-options footer).
void PrintOptionTable(const std::vector<OptionDescriptor>& options) {
  TablePrinter table({"option", "type", "range", "default", "doc"});
  for (const OptionDescriptor& desc : options) {
    table.BeginRow();
    table.AddCell(desc.name);
    table.AddCell(OptionTypeName(desc.type));
    table.AddCell(desc.RangeText());
    table.AddCell(desc.DefaultText());
    table.AddCell(desc.doc);
  }
  table.Print(std::cout);
}

int Solvers(int argc, char** argv) {
  if (argc > 3) return Usage();
  const bool names_only = argc == 3 && std::string(argv[2]) == "--names";
  if (argc == 3 && !names_only) return Usage();

  const SolverRegistry& registry = SolverRegistry::Global();
  if (names_only) {
    for (const std::string& name : registry.Names()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  for (const std::string& name : registry.Names()) {
    const SolverInfo* info = registry.Find(name);
    std::cout << name << "  [" << SolverKindName(info->kind) << "]\n  "
              << info->summary << "\n";
    PrintOptionTable(info->options);
    std::cout << "\n";
  }
  std::cout << "session options (accepted alongside any solver's):\n";
  PrintOptionTable(SolveSession::SessionOptions());
  return 0;
}

int Solve(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string path = argv[2];
  const std::string solver = argv[3];
  std::string trace_path;
  bool print_stats = false;
  std::vector<std::string> args;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) return Usage();
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      args.push_back(arg);
    }
  }

  StatusOr<SolveSession> session = SolveSession::Open(path);
  if (!session.ok()) {
    std::cerr << "open failed: " << session.status().ToString() << "\n";
    return 1;
  }
  // The recorder allocates all its ring capacity here, at arm time; the
  // run itself then emits lock-free and alloc-free.
  std::optional<TraceRecorder> recorder;
  if (!trace_path.empty()) {
    recorder.emplace();
    session->BindTrace(&*recorder);
  }
  StatusOr<SolveReport> report = session->Solve(solver, args);
  if (!report.ok()) {
    std::cerr << "solve failed: " << report.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"property", "value"});
  const auto add = [&](const std::string& key, const std::string& value) {
    table.BeginRow();
    table.AddCell(key);
    table.AddCell(value);
  };
  add("solver", report->solver);
  add("algorithm", report->algorithm);
  add("kind", SolverKindName(report->kind));
  add("source", report->source);
  add("threads", std::to_string(report->threads));
  add("sets chosen", std::to_string(report->solution.size()));
  add(report->kind == SolverKind::kPairFinder ? "found" : "feasible",
      report->feasible ? "yes" : "NO");
  add("passes", std::to_string(report->passes));
  add("space bytes", std::to_string(report->peak_space_bytes));
  add("arena high-water", std::to_string(report->arena_high_water));
  add("arena reserved", std::to_string(report->arena_reserved));
  add("sets taken (ctr)", std::to_string(report->stats.sets_taken));
  add("elements covered", std::to_string(report->stats.elements_covered));
  if (report->kind == SolverKind::kMaxCoverage) {
    add("coverage", std::to_string(report->extra));
  }
  if (report->kind == SolverKind::kPairFinder) {
    add("candidates(p1)", std::to_string(report->extra));
  }
  add("wall ms", std::to_string(report->wall_seconds * 1e3));
  table.Print(std::cout);

  if (!report->pass_breakdown.empty()) {
    std::cout << "\nper-pass breakdown:\n";
    TablePrinter passes(
        {"pass", "name", "items", "shards", "takes", "covered", "wall ms"});
    std::size_t index = 0;
    for (const PassBreakdownRow& row : report->pass_breakdown) {
      passes.BeginRow();
      passes.AddCell(static_cast<std::uint64_t>(index++));
      passes.AddCell(row.name);
      passes.AddCell(row.items_scanned);
      passes.AddCell(row.shard_jobs);
      passes.AddCell(row.sets_taken);
      passes.AddCell(row.elements_covered);
      passes.AddCell(std::to_string(row.wall_seconds * 1e3));
    }
    passes.Print(std::cout);
  }

  if (print_stats) {
    std::cout << "\n";
    WritePrometheusStats(std::cout, report->counters);
  }

  if (recorder.has_value()) {
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "trace: cannot open '" << trace_path
                << "' for writing\n";
      return 1;
    }
    recorder->WriteChromeTrace(out);
    if (!out.flush()) {
      std::cerr << "trace: write to '" << trace_path << "' failed\n";
      return 1;
    }
    std::cout << "\nwrote " << recorder->events_recorded()
              << " trace events to " << trace_path;
    if (recorder->events_dropped() > 0) {
      std::cout << " (" << recorder->events_dropped()
                << " dropped: ring overflow)";
    }
    std::cout << "\n";
  }

  if (!report->feasible) {
    std::cerr << "solver did not find a "
              << (report->kind == SolverKind::kPairFinder
                      ? "covering pair"
                      : "feasible solution")
              << "\n";
    return 1;
  }
  return 0;
}

// Prints a daemon-marshalled report in the same table shape as the
// local `solve` command (fields the wire carries; engine counters come
// from the marshalled snapshot rather than the scalar stats view).
int PrintRemoteReport(const serve::SolveResponse& report) {
  TablePrinter table({"property", "value"});
  const auto add = [&](const std::string& key, const std::string& value) {
    table.BeginRow();
    table.AddCell(key);
    table.AddCell(value);
  };
  add("solver", report.solver);
  add("algorithm", report.algorithm);
  add("kind", SolverKindName(report.kind));
  add("source", report.source);
  add("sets chosen", std::to_string(report.solution.size()));
  add(report.kind == SolverKind::kPairFinder ? "found" : "feasible",
      report.feasible ? "yes" : "NO");
  add("passes", std::to_string(report.passes));
  add("space bytes", std::to_string(report.peak_space_bytes));
  add("arena high-water", std::to_string(report.arena_high_water));
  if (report.kind == SolverKind::kMaxCoverage) {
    add("coverage", std::to_string(report.extra));
  }
  if (report.kind == SolverKind::kPairFinder) {
    add("candidates(p1)", std::to_string(report.extra));
  }
  add("wall ms", std::to_string(static_cast<double>(report.wall_ns) * 1e-6));
  table.Print(std::cout);

  if (!report.counters.empty()) {
    std::cout << "\ncounters:\n";
    TablePrinter counters({"counter", "kind", "value"});
    for (const serve::WireCounter& counter : report.counters) {
      counters.BeginRow();
      counters.AddCell(counter.name);
      counters.AddCell(CounterKindName(counter.kind));
      counters.AddCell(counter.value);
    }
    counters.Print(std::cout);
  }

  if (!report.breakdown.empty()) {
    std::cout << "\nper-pass breakdown:\n";
    TablePrinter passes(
        {"pass", "name", "items", "shards", "takes", "covered", "wall ms"});
    std::size_t index = 0;
    for (const serve::WireBreakdownRow& row : report.breakdown) {
      passes.BeginRow();
      passes.AddCell(static_cast<std::uint64_t>(index++));
      passes.AddCell(row.name);
      passes.AddCell(row.items_scanned);
      passes.AddCell(row.shard_jobs);
      passes.AddCell(row.sets_taken);
      passes.AddCell(row.elements_covered);
      passes.AddCell(std::to_string(static_cast<double>(row.wall_ns) * 1e-6));
    }
    passes.Print(std::cout);
  }

  if (!report.feasible) {
    std::cerr << "solver did not find a "
              << (report.kind == SolverKind::kPairFinder
                      ? "covering pair"
                      : "feasible solution")
              << "\n";
    return 1;
  }
  return 0;
}

int Client(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string endpoint = argv[2];
  const std::string verb = argv[3];

  StatusOr<serve::SolveClient> client = serve::SolveClient::Connect(endpoint);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }

  if (verb == "ping") {
    const Status status = client->Ping();
    if (!status.ok()) {
      std::cerr << "ping failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "pong\n";
    return 0;
  }
  if (verb == "stats") {
    StatusOr<std::string> stats = client->Stats();
    if (!stats.ok()) {
      std::cerr << "stats failed: " << stats.status().ToString() << "\n";
      return 1;
    }
    std::cout << *stats;
    return 0;
  }
  if (verb == "shutdown") {
    const Status status = client->Shutdown();
    if (!status.ok()) {
      std::cerr << "shutdown failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "daemon stopping\n";
    return 0;
  }
  if (verb == "solve") {
    if (argc < 6) return Usage();
    const std::string instance = argv[4];
    const std::string solver = argv[5];
    bool want_breakdown = false;
    std::vector<std::string> args;
    for (int i = 6; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--breakdown") {
        want_breakdown = true;
      } else {
        args.push_back(arg);
      }
    }
    StatusOr<serve::SolveResponse> report =
        client->Solve(instance, solver, args, want_breakdown);
    if (!report.ok()) {
      std::cerr << "solve failed: " << report.status().ToString() << "\n";
      return 1;
    }
    return PrintRemoteReport(*report);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "gen") return Generate(argc, argv);
  if (command == "convert") return Convert(argc, argv);
  if (command == "info") return Info(argc, argv);
  if (command == "solvers") return Solvers(argc, argv);
  if (command == "solve") return Solve(argc, argv);
  if (command == "client") return Client(argc, argv);
  return Usage();
}
