// newsroom_coverage: streaming maximum k-coverage on a news-feed workload.
//
// Scenario (the maximum coverage motivation of Saha-Getoor and the paper's
// Section 4): a newsroom can syndicate k feeds out of m candidates and
// wants the chosen feeds to jointly mention as many of the day's n topics
// as possible. Feeds arrive as a stream (one pass over the catalog); we
// compare:
//   * element-sampling (1-ε) scheme — the algorithm whose m/ε² space
//     Result 2 proves optimal,
//   * the single-pass threshold sieve baseline,
//   * offline greedy (the (1-1/e) yardstick) and the exact optimum.
//
// Run:  ./build/examples/newsroom_coverage

#include <iostream>
#include <string>

#include "api/solve_session.h"
#include "instance/generators.h"
#include "offline/exact_max_coverage.h"
#include "offline/greedy.h"
#include "util/table_printer.h"

int main() {
  using namespace streamsc;

  // The day's topics and candidate feeds: hub feeds cover many topics,
  // niche feeds few (the BlogTopicInstance skew).
  const std::size_t n_topics = 600, m_feeds = 120, k = 4;
  Rng rng(2026);
  const SetSystem feeds = BlogTopicInstance(n_topics, m_feeds, 0.1, rng);
  std::cout << "catalog: " << feeds.DebugString() << ", syndication slots k="
            << k << "\n\n";

  TablePrinter table(
      {"algorithm", "topics covered", "fraction", "passes", "space_bytes"});

  // Ground truth: exact optimum (k is small) and offline greedy.
  const ExactMaxCoverageResult exact = SolveExactMaxCoverage(feeds, k);
  const double opt = static_cast<double>(exact.coverage);
  {
    table.BeginRow();
    table.AddCell("exact optimum (offline)");
    table.AddCell(exact.coverage);
    table.AddCell(1.0, 3);
    table.AddCell("-");
    table.AddCell("-");
  }
  {
    const Solution greedy = GreedyMaxCoverage(feeds, k);
    const Count covered = feeds.CoverageOf(greedy.chosen);
    table.BeginRow();
    table.AddCell("offline greedy (1-1/e)");
    table.AddCell(covered);
    table.AddCell(static_cast<double>(covered) / opt, 3);
    table.AddCell("-");
    table.AddCell("-");
  }

  // Streaming contenders at a few precision levels — all driven through
  // the registry/session front door; `extra` carries the exact coverage
  // for max-coverage solvers.
  SolveSession session = SolveSession::OverSystem(feeds);
  const auto add_streaming = [&](const std::string& solver,
                                 const std::vector<std::string>& options) {
    StatusOr<SolveReport> report = session.Solve(solver, options);
    if (!report.ok()) {
      std::cerr << solver << " failed: " << report.status().ToString()
                << "\n";
      return;
    }
    table.BeginRow();
    table.AddCell(report->algorithm);
    table.AddCell(report->extra);
    table.AddCell(static_cast<double>(report->extra) / opt, 3);
    table.AddCell(report->passes);
    table.AddCell(report->peak_space_bytes);
  };
  const std::string k_arg = "k=" + std::to_string(k);
  const std::string k_limit_arg = "exact_k_limit=" + std::to_string(k);
  for (const char* eps : {"0.25", "0.1"}) {
    add_streaming("element_sampling_mc",
                  {std::string("epsilon=") + eps, k_limit_arg, k_arg});
  }
  add_streaming("sieve_mc", {k_arg});
  table.Print(std::cout);

  std::cout << "\nReading the table: the element-sampling scheme tracks the "
               "optimum within its (1-eps)\nguarantee while storing only "
               "sampled projections. (At this toy n the k*log m/eps^2\n"
               "sample rate saturates, so both eps rows store the same "
               "projections — bench_e8\nsweeps the regime where the m/eps^2 "
               "space law, which Theorem 4 proves necessary,\nis visible.) "
               "The sieve is cheaper still but gives only its ~1/2-style "
               "guarantee.\n";
  return 0;
}
