// workload_served: the solve daemon.
//
// Runs a SolveService (serve/solve_service.h) over a set of sscb1
// instances registered at startup: a long-lived process that accepts
// framed solve requests on a Unix or loopback TCP socket, admits them
// into a fixed ring of worker slots (a full ring answers a typed BUSY
// immediately — the daemon never queues unboundedly), and serves every
// request from warm per-slot SolveSessions over one shared mmap per
// instance.
//
// Usage:
//   workload_served --listen=ENDPOINT --instance=NAME=PATH.sscb1 ...
//                   [--workers=N] [--ring=N] [--threads=N]
//                   [--memory-budget=BYTES] [--trace]
//     ENDPOINT: unix:/path/to.sock or tcp:PORT (loopback; tcp:0 lets the
//               kernel pick — the bound endpoint is printed on stdout).
//     --workers        concurrently served connections (default 2)
//     --ring           admission queue slots before BUSY (default 4)
//     --threads        engine width per solve (default 1)
//     --memory-budget  server-side arena cap per request; an over-budget
//                      solve returns RESOURCE_EXHAUSTED, the daemon
//                      keeps serving (default: client's choice)
//     --trace          arm per-slot TraceRecorders so clients may request
//                      per-pass breakdowns
//
// The daemon prints `listening on <endpoint>` once ready and runs until
// a client sends a shutdown request (workload_tool client ... shutdown)
// or the process is signalled.
//
// Example session (two shells):
//   ./build/examples/workload_tool gen planted 4096 128 4 7 /tmp/w.ssc
//   ./build/examples/workload_tool convert /tmp/w.ssc /tmp/w.sscb1
//   ./build/examples/workload_served --listen=unix:/tmp/solve.sock
//       --instance=w=/tmp/w.sscb1 --workers=4 --ring=8
//   ./build/examples/workload_tool client unix:/tmp/solve.sock solve w
//       assadi alpha=2
//   ./build/examples/workload_tool client unix:/tmp/solve.sock stats
//   ./build/examples/workload_tool client unix:/tmp/solve.sock shutdown

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "serve/solve_service.h"

namespace {

using namespace streamsc;

int Usage() {
  std::cerr
      << "usage:\n"
      << "  workload_served --listen=ENDPOINT --instance=NAME=PATH ...\n"
      << "                  [--workers=N] [--ring=N] [--threads=N]\n"
      << "                  [--memory-budget=BYTES] [--trace]\n"
      << "  ENDPOINT: unix:/path/to.sock | tcp:PORT (tcp:0 = kernel-"
         "assigned,\n"
      << "  printed on startup)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServiceOptions options;
  options.endpoint.clear();
  std::vector<std::pair<std::string, std::string>> instances;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--listen=", 0) == 0) {
      options.endpoint = arg.substr(9);
    } else if (arg.rfind("--instance=", 0) == 0) {
      const std::string spec = arg.substr(11);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::cerr << "bad --instance (want NAME=PATH): " << arg << "\n";
        return Usage();
      }
      instances.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--ring=", 0) == 0) {
      options.ring_capacity = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.solve_threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--memory-budget=", 0) == 0) {
      options.memory_budget = std::strtoull(arg.c_str() + 16, nullptr, 10);
    } else if (arg == "--trace") {
      options.enable_trace = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage();
    }
  }
  if (options.endpoint.empty() || instances.empty()) return Usage();

  serve::SolveService service(std::move(options));
  for (const auto& [name, path] : instances) {
    const Status status = service.AddInstance(name, path);
    if (!status.ok()) {
      std::cerr << "instance '" << name << "': " << status.ToString()
                << "\n";
      return 1;
    }
  }
  const Status started = service.Start();
  if (!started.ok()) {
    std::cerr << "start failed: " << started.ToString() << "\n";
    return 1;
  }
  // Printed (and flushed) once ready so wrappers can parse the resolved
  // endpoint — essential for tcp:0.
  std::cout << "listening on " << serve::EndpointSpec(service.endpoint())
            << std::endl;
  service.Wait();
  std::cout << "solve service stopped\n";
  return 0;
}
