// Quickstart: the 60-second tour of the library.
//
//   1. build a set system,
//   2. stream it through the paper's algorithm (Assadi, Theorem 2),
//   3. inspect the solution, pass count, and logical space,
//   4. compare with the offline greedy / exact optima.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <iostream>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "offline/greedy.h"
#include "offline/verifier.h"
#include "stream/set_stream.h"
#include "util/table_printer.h"

int main() {
  using namespace streamsc;

  // 1. An instance: 1000 elements, 80 sets, a planted optimum of 5 sets.
  Rng rng(42);
  std::vector<SetId> planted;
  const SetSystem system = PlantedCoverInstance(1000, 80, 5, rng, &planted);
  std::cout << "instance: " << system.DebugString()
            << ", planted optimum = " << planted.size() << " sets\n\n";

  // 2. Stream it through Algorithm 1 with alpha = 2 (a 2.5-approximation
  //    in ~(2*2+1) passes per guess, using ~m*sqrt(n) space).
  AssadiConfig config;
  config.alpha = 2;
  config.epsilon = 0.5;
  AssadiSetCover algorithm(config);

  VectorSetStream stream(system);  // adversarial (insertion) order
  const SetCoverRunResult result = algorithm.Run(stream);

  // 3. Inspect the run.
  const CoverVerdict verdict = VerifyCover(system, result.solution);
  std::cout << "algorithm : " << algorithm.name() << "\n"
            << "feasible  : " << (verdict.feasible ? "yes" : "no") << "\n"
            << "sets used : " << result.solution.size() << "\n"
            << "passes    : " << result.stats.passes << "\n"
            << "space     : " << HumanBytes(result.stats.peak_space_bytes)
            << " (logical, as charged by the streaming model)\n\n";

  // 4. Offline reference points.
  const Solution greedy = GreedySetCover(system);
  const ExactSetCoverResult exact = SolveExactSetCover(system);
  TablePrinter table({"solver", "sets", "ratio vs opt"});
  auto add = [&](const std::string& name, std::size_t size) {
    table.BeginRow();
    table.AddCell(name);
    table.AddCell(static_cast<std::uint64_t>(size));
    table.AddCell(static_cast<double>(size) /
                      static_cast<double>(exact.solution.size()),
                  2);
  };
  add("exact (branch & bound)", exact.solution.size());
  add("offline greedy", greedy.size());
  add("streaming assadi(alpha=2)", result.solution.size());
  table.Print(std::cout);

  std::cout << "\nTry: raise alpha to shrink space (more passes, looser "
               "ratio)\n     — the space-approximation tradeoff this "
               "library reproduces.\n";
  return verdict.feasible ? 0 : 1;
}
