// Quickstart: the 60-second tour of the library.
//
//   1. build a set system,
//   2. solve it through the unified solver API — a SolveSession over the
//      instance, running the paper's algorithm ("assadi", Theorem 2) by
//      registry name with key=value options,
//   3. inspect the uniform SolveReport (solution, passes, logical space),
//   4. compare with the offline greedy / exact optima — and with two
//      other registered solvers, swapped in by changing one string.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <iostream>

#include "api/solve_session.h"
#include "instance/generators.h"
#include "offline/exact_set_cover.h"
#include "offline/greedy.h"
#include "offline/verifier.h"
#include "util/table_printer.h"

int main() {
  using namespace streamsc;

  // 1. An instance: 1000 elements, 80 sets, a planted optimum of 5 sets.
  Rng rng(42);
  std::vector<SetId> planted;
  const SetSystem system = PlantedCoverInstance(1000, 80, 5, rng, &planted);
  std::cout << "instance: " << system.DebugString()
            << ", planted optimum = " << planted.size() << " sets\n\n";

  // 2. A session over the in-memory instance (SolveSession::Open(path)
  //    does the same over ssc1/sscb1 files, sniffing the format). Run
  //    Algorithm 1 with alpha = 2: a 2.5-approximation in ~(2*2+1)
  //    passes per guess, using ~m*sqrt(n) space. Adding `threads=4`
  //    would bind a 4-worker engine for this run — same bytes out
  //    either way.
  SolveSession session = SolveSession::OverSystem(system);
  StatusOr<SolveReport> report =
      session.Solve("assadi", {"alpha=2", "epsilon=0.5"});
  if (!report.ok()) {
    // Malformed options come back as actionable Status errors (solver,
    // key, offending value, legal range) — never an abort.
    std::cerr << "solve failed: " << report.status().ToString() << "\n";
    return 1;
  }

  // 3. Inspect the run.
  const CoverVerdict verdict = VerifyCover(system, report->solution);
  std::cout << "algorithm : " << report->algorithm << "\n"
            << "feasible  : " << (verdict.feasible ? "yes" : "no") << "\n"
            << "sets used : " << report->solution.size() << "\n"
            << "passes    : " << report->passes << "\n"
            << "space     : " << HumanBytes(report->peak_space_bytes)
            << " (logical, as charged by the streaming model)\n\n";

  // 4. Offline reference points, plus two more registry solvers — the
  //    whole family is one string away.
  const Solution greedy = GreedySetCover(system);
  const ExactSetCoverResult exact = SolveExactSetCover(system);
  TablePrinter table({"solver", "sets", "ratio vs opt"});
  auto add = [&](const std::string& name, std::size_t size) {
    table.BeginRow();
    table.AddCell(name);
    table.AddCell(static_cast<std::uint64_t>(size));
    table.AddCell(static_cast<double>(size) /
                      static_cast<double>(exact.solution.size()),
                  2);
  };
  add("exact (branch & bound)", exact.solution.size());
  add("offline greedy", greedy.size());
  add("streaming assadi(alpha=2)", report->solution.size());
  for (const char* other : {"threshold_greedy", "emek_rosen"}) {
    StatusOr<SolveReport> r = session.Solve(other, {});
    if (r.ok()) add("streaming " + r->algorithm, r->solution.size());
  }
  table.Print(std::cout);

  std::cout << "\nTry: raise alpha to shrink space (more passes, looser "
               "ratio)\n     — the space-approximation tradeoff this "
               "library reproduces.\n     `workload_tool solvers` lists "
               "every registered solver and option.\n";
  return verdict.feasible ? 0 : 1;
}
