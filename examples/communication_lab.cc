// communication_lab: the paper's lower-bound machinery, run interactively.
//
// Walks through the chain behind Theorem 1 (and its MaxCover analogue):
//
//   1. sample a hard D_SC instance and exhibit the opt gap (Lemma 3.2);
//   2. wrap a streaming algorithm as a two-party protocol whose
//      communication is 2·passes·space (the simulation argument);
//   3. run the Lemma 3.4 reduction: that protocol now *solves set
//      disjointness*, so Disj's Ω(t) communication bound transfers to
//      streaming set cover — the whole lower bound in one executable.
//
// Run:  ./build/examples/communication_lab

#include <iostream>
#include <memory>

#include "comm/reductions.h"
#include "core/assadi_set_cover.h"
#include "instance/hard_set_cover.h"
#include "offline/exact_set_cover.h"
#include "util/table_printer.h"

int main() {
  using namespace streamsc;

  // Gap-regime parameters (see bench_a3_tscale_regime for the calibration).
  HardSetCoverParams params;
  params.n = 4096;
  params.m = 6;
  params.alpha = 2.0;
  params.t_scale = 0.34;
  const double epsilon = 0.4;
  HardSetCoverDistribution dist(params);

  std::cout << "== 1. The hard distribution D_SC ==\n"
            << "n=" << params.n << ", 2m=" << 2 * params.m
            << " sets, alpha=" << params.alpha << ", Disj universe t="
            << dist.DisjT() << "\n\n";

  Rng rng(7);
  TablePrinter gap({"theta", "opt <= 2*alpha?", "meaning"});
  for (const int theta : {1, 0}) {
    const HardSetCoverInstance inst =
        theta == 1 ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
    ExactSetCoverOptions options;
    options.size_limit = static_cast<std::size_t>(2 * params.alpha);
    const ExactSetCoverResult result =
        SolveExactSetCover(inst.ToSetSystem(), options);
    gap.BeginRow();
    gap.AddCell(theta);
    gap.AddCell(result.feasible ? "yes" : "no");
    gap.AddCell(theta == 1 ? "planted pair covers: opt = 2"
                           : "no small cover: opt > 2*alpha (Lemma 3.2)");
  }
  gap.Print(std::cout);

  std::cout << "\n== 2. Streaming algorithm as a communication protocol ==\n"
            << "Alice streams her sets, hands the state to Bob, and so on:\n"
            << "communication = 2 * passes * space  (Theorem 1 proof).\n\n";

  StreamingSetCoverValueProtocol backend(
      [epsilon]() -> std::unique_ptr<StreamingSetCoverAlgorithm> {
        AssadiConfig config;
        config.alpha = 2;
        config.epsilon = epsilon;
        return std::make_unique<AssadiSetCover>(config);
      },
      /*shuffle_stream=*/true);  // random arrival — the D_SC^rnd regime

  std::cout << "== 3. The Lemma 3.4 reduction, end to end ==\n"
            << "Embedding Disj_t at a public random index of D_SC; the\n"
            << "other m-1 slots are filled from D^N (public one side,\n"
            << "private conditional the other).\n\n";

  DisjFromSetCoverProtocol reduction(params, &backend,
                                     2.0 * (params.alpha + epsilon));
  DisjDistribution disj(reduction.DisjT());
  Rng eval_rng(13);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(reduction, disj, 30, eval_rng);

  TablePrinter summary({"metric", "value"});
  summary.BeginRow();
  summary.AddCell("Disj trials");
  summary.AddCell(static_cast<std::uint64_t>(eval.trials));
  summary.BeginRow();
  summary.AddCell("errors");
  summary.AddCell(static_cast<std::uint64_t>(eval.errors));
  summary.BeginRow();
  summary.AddCell("error rate");
  summary.AddCell(eval.error_rate, 3);
  summary.BeginRow();
  summary.AddCell("mean transcript bits");
  summary.AddCell(eval.mean_bits, 0);
  summary.BeginRow();
  summary.AddCell("mean bits (Yes inputs)");
  summary.AddCell(eval.mean_bits_yes, 0);
  summary.BeginRow();
  summary.AddCell("mean bits (No inputs)");
  summary.AddCell(eval.mean_bits_no, 0);
  summary.Print(std::cout);

  std::cout
      << "\nReading the table: the streaming algorithm, used only through "
         "its value estimate,\ndecides set disjointness almost perfectly. "
         "Disjointness needs Omega(t) communication,\nand the transcript "
         "is 2*passes*space bits — so passes*space = Omega(t) = "
         "Omega(n^{1/alpha}),\nper embedded slot; with m slots (the "
         "direct-sum step, Lemma 3.4) that is\nOmega(m * n^{1/alpha}): "
         "Theorem 1.\n";
  return 0;
}
