// blog_watch: the workload that motivated streaming coverage problems
// (Saha-Getoor 2009, "multi-topic blog-watch"; paper's intro cites data
// mining / information retrieval).
//
// Scenario: n topics, m blogs; each blog covers a set of topics. Two
// editorial questions, answered in one or few passes without holding the
// blog-topic matrix in memory:
//   (a) max coverage: "pick k blogs to follow that jointly cover the most
//       topics"  -> streaming (1-ε)-approximate k-cover;
//   (b) set cover: "how many blogs does a full topic digest need?"
//       -> multi-pass (α+ε)-approximate set cover.

#include <iostream>

#include "api/solve_session.h"
#include "instance/generators.h"
#include "offline/exact_max_coverage.h"
#include "offline/greedy.h"
#include "util/table_printer.h"

int main() {
  using namespace streamsc;

  const std::size_t topics = 500;
  const std::size_t blogs = 300;
  Rng rng(7);
  const SetSystem system = BlogTopicInstance(topics, blogs, 0.05, rng);
  std::cout << "blog-watch corpus: " << blogs << " blogs over " << topics
            << " topics (" << system.TotalIncidences()
            << " blog-topic incidences)\n\n";

  // Both editorial questions run through one SolveSession — the solver
  // (and problem family) is just a registry key + options.
  SolveSession session = SolveSession::OverSystem(system);

  // (a) Which k blogs cover the most topics? One pass, small sketch.
  const std::size_t k = 5;
  StatusOr<SolveReport> mc_report =
      session.Solve("element_sampling_mc", {"epsilon=0.1", "k=5"});
  if (!mc_report.ok()) {
    std::cerr << "max-coverage solve failed: "
              << mc_report.status().ToString() << "\n";
    return 1;
  }

  const ExactMaxCoverageResult exact_mc = SolveExactMaxCoverage(system, k);
  TablePrinter follow({"method", "blogs", "topics covered", "fraction"});
  auto add_follow = [&](const std::string& name, std::size_t used,
                        Count covered) {
    follow.BeginRow();
    follow.AddCell(name);
    follow.AddCell(static_cast<std::uint64_t>(used));
    follow.AddCell(covered);
    follow.AddCell(static_cast<double>(covered) / topics, 3);
  };
  add_follow("streaming sketch (eps=0.1, 1 storage pass)",
             mc_report->solution.size(), mc_report->extra);
  add_follow("offline exact", exact_mc.solution.size(), exact_mc.coverage);
  follow.PrintWithTitle(std::cout,
                        "follow k=5 blogs: streaming vs offline");
  std::cout << "sketch space: " << HumanBytes(mc_report->peak_space_bytes)
            << " vs dense matrix "
            << HumanBytes(static_cast<Bytes>(topics) * blogs / 8) << "\n";

  // (b) Full digest: minimum blogs covering every topic.
  StatusOr<SolveReport> sc_report =
      session.Solve("assadi", {"alpha=2", "epsilon=0.5"});
  if (!sc_report.ok()) {
    std::cerr << "set-cover solve failed: " << sc_report.status().ToString()
              << "\n";
    return 1;
  }
  const Solution greedy = GreedySetCover(system);

  TablePrinter digest({"method", "blogs needed", "passes", "space"});
  digest.BeginRow();
  digest.AddCell("streaming assadi(alpha=2)");
  digest.AddCell(static_cast<std::uint64_t>(sc_report->solution.size()));
  digest.AddCell(sc_report->passes);
  digest.AddCell(HumanBytes(sc_report->peak_space_bytes));
  digest.BeginRow();
  digest.AddCell("offline greedy (holds everything)");
  digest.AddCell(static_cast<std::uint64_t>(greedy.size()));
  digest.AddCell(std::uint64_t{1});
  digest.AddCell(HumanBytes(static_cast<Bytes>(topics) * blogs / 8));
  digest.PrintWithTitle(std::cout, "full topic digest (set cover)");

  return sc_report->feasible ? 0 : 1;
}
