// tradeoff_explorer: interactive-style CLI over the space-approximation
// tradeoff. Pass parameters on the command line:
//
//   tradeoff_explorer [n] [m] [opt] [alpha_max]
//
// and it prints, for alpha = 1..alpha_max, the measured (passes, space,
// ratio) of Algorithm 1 on a planted instance of that shape, next to the
// Theorem 1 lower-bound curve m·n^{1/α} — the two sides of the paper in
// one table.

#include <cstdlib>
#include <iostream>

#include "core/assadi_set_cover.h"
#include "instance/generators.h"
#include "stream/set_stream.h"
#include "util/math.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace streamsc;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;
  const std::size_t opt = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  const std::size_t alpha_max =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 6;

  if (n < 16 || m < opt || opt < 1 || alpha_max < 1) {
    std::cerr << "usage: tradeoff_explorer [n>=16] [m>=opt] [opt>=1] "
                 "[alpha_max>=1]\n";
    return 2;
  }

  std::cout << "space-approximation tradeoff on a planted instance: n=" << n
            << " m=" << m << " opt=" << opt << "\n"
            << "upper bound: Algorithm 1 (Theorem 2); lower bound curve: "
               "m*n^{1/alpha} (Theorem 1)\n";

  Rng rng(1234);
  const SetSystem system = PlantedCoverInstance(n, m, opt, rng);

  TablePrinter table({"alpha", "passes", "sets", "ratio", "space",
                      "space_bits", "lower_bound_bits m*n^{1/a}"});
  for (std::size_t alpha = 1; alpha <= alpha_max; ++alpha) {
    VectorSetStream stream(system);
    AssadiConfig config;
    config.alpha = alpha;
    config.epsilon = 0.5;
    AssadiSetCover algorithm(config);
    Rng run_rng(alpha * 97);
    const AssadiGuessResult result =
        algorithm.RunWithGuess(stream, opt, run_rng);
    table.BeginRow();
    table.AddCell(static_cast<std::uint64_t>(alpha));
    table.AddCell(result.passes);
    table.AddCell(static_cast<std::uint64_t>(result.solution.size()));
    table.AddCell(static_cast<double>(result.solution.size()) /
                      static_cast<double>(opt),
                  2);
    table.AddCell(HumanBytes(result.peak_space_bytes));
    table.AddCell(static_cast<double>(result.peak_space_bytes) * 8, 0);
    table.AddCell(static_cast<double>(m) *
                      NthRoot(static_cast<double>(n),
                              static_cast<double>(alpha)),
                  0);
  }
  table.Print(std::cout);

  std::cout << "\nreading the table: as alpha grows, passes grow (2a+1), "
               "the ratio budget loosens (a+0.5),\nand both the measured "
               "space and the lower-bound curve fall together like "
               "n^{1/alpha} —\nthe tight tradeoff the paper proves.\n";
  return 0;
}
