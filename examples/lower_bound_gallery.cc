// lower_bound_gallery: a guided tour of the paper's lower-bound machinery.
//
// Walks through, with live numbers:
//   1. the hard Disj distribution (Section 2.2),
//   2. the mapping-extension embedding into set cover (Definition 3),
//   3. a D_SC instance and its opt-2 / opt>2α dichotomy (Lemma 3.2),
//   4. the Lemma 3.4 reduction executed end-to-end with a real streaming
//      algorithm as the inner SetCover protocol.

#include <iostream>
#include <memory>

#include "comm/reductions.h"
#include "instance/mapping_extension.h"
#include "core/assadi_set_cover.h"
#include "instance/hard_set_cover.h"
#include "offline/exact_set_cover.h"
#include "util/table_printer.h"

int main() {
  using namespace streamsc;
  Rng rng(11);

  std::cout << "=== 1. The hard Disj distribution (t = 12) ===\n";
  DisjDistribution disj(12);
  const DisjInstance yes = disj.SampleYes(rng);
  const DisjInstance no = disj.SampleNo(rng);
  std::cout << "Yes instance: A = " << yes.a.ToString()
            << ", B = " << yes.b.ToString() << "  (disjoint)\n";
  std::cout << "No  instance: A = " << no.a.ToString()
            << ", B = " << no.b.ToString() << "  (|A∩B| = "
            << (no.a & no.b).CountSet() << ")\n\n";

  std::cout << "=== 2. Mapping-extension into [n = 48] ===\n";
  MappingExtension f(12, 48, rng);
  std::cout << "f(0) = " << f.Block(0).ToString() << "\n";
  std::cout << "S = [n] \\ f(A) has " << f.ExtendComplement(no.a).CountSet()
            << " of 48 elements; T misses f(B)'s blocks; S ∪ T misses "
               "exactly f(A∩B): "
            << (f.ExtendComplement(no.a) | f.ExtendComplement(no.b))
                   .Difference(DynamicBitset::Full(48))
                   .CountSet()
            << " == 0 means covered, else the missing block size\n\n";

  std::cout << "=== 3. D_SC and the Lemma 3.2 dichotomy ===\n";
  HardSetCoverParams params;
  params.n = 512;
  params.m = 8;
  params.alpha = 2.0;
  params.t_scale = 1.0;
  HardSetCoverDistribution dist(params);
  TablePrinter table({"theta", "opt<=2", "opt<=2*alpha(=4)"});
  for (const int theta : {1, 0}) {
    const HardSetCoverInstance inst =
        theta == 1 ? dist.SampleThetaOne(rng) : dist.SampleThetaZero(rng);
    const SetSystem system = inst.ToSetSystem();
    ExactSetCoverOptions two;
    two.size_limit = 2;
    ExactSetCoverOptions four;
    four.size_limit = 4;
    table.BeginRow();
    table.AddCell(theta);
    table.AddCell(SolveExactSetCover(system, two).feasible ? "yes" : "no");
    table.AddCell(SolveExactSetCover(system, four).feasible ? "yes" : "no");
  }
  table.Print(std::cout);
  std::cout << "(θ=1 plants {S_i*, T_i*}; θ=0 has no small cover → any\n"
               " 2-approximation must tell the cases apart)\n\n";

  std::cout << "=== 4. Lemma 3.4 reduction, end to end ===\n";
  StreamingSetCoverValueProtocol backend(
      []() -> std::unique_ptr<StreamingSetCoverAlgorithm> {
        AssadiConfig config;
        config.alpha = 2;
        config.epsilon = 0.5;
        return std::make_unique<AssadiSetCover>(config);
      },
      /*shuffle_stream=*/true);
  HardSetCoverParams red_params;
  red_params.n = 256;
  red_params.m = 6;
  red_params.alpha = 2.0;
  red_params.t_scale = 1.0;
  DisjFromSetCoverProtocol reduction(red_params, &backend);
  DisjDistribution input_dist(reduction.DisjT());
  Rng eval_rng(13);
  const ProtocolEvaluation eval =
      EvaluateDisjProtocol(reduction, input_dist, 25, eval_rng);
  std::cout << "solved Disj_" << reduction.DisjT() << " via a streaming "
            << "2-approximation of set cover on m = " << red_params.m
            << " embedded instances:\n  error "
            << eval.errors << "/" << eval.trials << " = " << eval.error_rate
            << ", mean transcript " << eval.mean_bits << " bits\n";
  std::cout << "\n(The paper's Theorem 3 says *every* such protocol pays "
               "Ω̃(m·n^{1/α}) bits;\n the measured transcript shows this "
               "simulation cost concretely.)\n";
  return 0;
}
